package estsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hdunbiased/internal/hdb"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Job is one estimation session tracked by a Manager: the session itself
// plus lifecycle state and the request that started it.
type Job struct {
	ID      string
	Spec    Spec
	Config  Config
	Labels  []string // measure labels in Snapshot.Measures order
	Created time.Time

	sess   *Session
	cancel context.CancelFunc

	mu    sync.Mutex
	state JobState
	err   string
}

// State returns the job's lifecycle phase and failure message (empty unless
// failed).
func (j *Job) State() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err
}

// Snapshot returns the session's current merged state.
func (j *Job) Snapshot() Snapshot { return j.sess.Snapshot() }

// Cancel asks the job's session to stop; the final snapshot keeps the
// partial (still unbiased) merge. Safe to call in any state.
func (j *Job) Cancel() { j.cancel() }

// Manager owns the estimation jobs of one backend: creation, lookup and
// cancellation. It is the state behind the HTTP job API (Handler) but is
// usable directly. Safe for concurrent use.
type Manager struct {
	backend hdb.Interface

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // creation order, for stable listings
	seq   int
}

// NewManager builds a Manager serving sessions against backend. The
// backend's Query must be safe for concurrent use (hdb.Table and
// webform.Client both are).
func NewManager(backend hdb.Interface) *Manager {
	return &Manager{backend: backend, jobs: make(map[string]*Job)}
}

// Start validates the spec, builds a session and launches it in the
// background, returning the tracked job immediately.
func (m *Manager) Start(spec Spec, cfg Config) (*Job, error) {
	factory, labels, err := spec.NewFactory(m.backend.Schema())
	if err != nil {
		return nil, err
	}
	if cfg.TargetRSE == 0 && cfg.MaxPasses == 0 && cfg.MaxCost == 0 && cfg.MaxDuration == 0 {
		// A job with no rule would run to the pass hard cap; default to the
		// sort of budget a per-IP-limited hidden database allows per day.
		cfg.MaxCost = 1000
	}
	sess, err := New(m.backend, factory, cfg)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("job-%06d", m.seq)
	job := &Job{
		ID: id, Spec: spec, Config: cfg, Labels: labels,
		Created: time.Now(), sess: sess, cancel: cancel, state: JobRunning,
	}
	m.jobs[id] = job
	m.order = append(m.order, id)
	m.mu.Unlock()

	go func() {
		defer cancel()
		_, err := sess.Run(ctx)
		job.mu.Lock()
		switch {
		case err == nil:
			job.state = JobDone
		case errors.Is(err, context.Canceled):
			job.state = JobCancelled
		default:
			job.state = JobFailed
			job.err = err.Error()
		}
		job.mu.Unlock()
	}()
	return job, nil
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all jobs in creation order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

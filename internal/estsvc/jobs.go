package estsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdunbiased/internal/hdb"
	"hdunbiased/internal/obs"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
	// JobDegraded is a running job the degradation ladder has demoted to
	// the Boolean-check estimator after an invariant violation (or a
	// count-free backend). It behaves like JobRunning for occupancy,
	// draining and resume; the demotion itself lives in Spec.Degraded.
	JobDegraded JobState = "degraded"
	// JobQuarantined is terminal: the backend violated an invariant again
	// after the job had already degraded (or the ladder is disabled and
	// quarantine was requested). The checkpoint is kept, but only an
	// explicit Resume revives the job.
	JobQuarantined JobState = "quarantined"
)

// Active reports whether the state is a running phase (JobRunning or
// JobDegraded) — the states occupancy counting, draining and double-resume
// checks care about.
func (s JobState) Active() bool { return s == JobRunning || s == JobDegraded }

// ErrJobRunning is returned by Manager.Resume for a job that is still
// running — there is nothing to resume.
var ErrJobRunning = errors.New("job is running")

// Job is one estimation session tracked by a Manager: the session itself
// plus lifecycle state and the request that started it.
type Job struct {
	ID      string
	Spec    Spec
	Config  Config
	Labels  []string // measure labels in Snapshot.Measures order
	Created time.Time
	Resumed bool // this incarnation was restored from a checkpoint
	// Violation is the invariant violation that demoted (or quarantined)
	// the job, empty otherwise. Mirrors Spec.DegradedReason for degraded
	// jobs so the wire payload survives kill+resume.
	Violation string

	sess   *Session
	cancel context.CancelFunc
	done   chan struct{} // closed when the launch goroutine has fully settled (incl. final store writes)

	mu    sync.Mutex
	state JobState
	err   string
}

// State returns the job's lifecycle phase and failure message (empty unless
// failed).
func (j *Job) State() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err
}

// Snapshot returns the session's current merged state.
func (j *Job) Snapshot() Snapshot { return j.sess.Snapshot() }

// Cancel asks the job's session to stop; the final snapshot keeps the
// partial (still unbiased) merge. Safe to call in any state. A cancelled
// job's latest checkpoint stays in the Manager's store, so it can be
// resumed later.
func (j *Job) Cancel() { j.cancel() }

// Manager owns the estimation jobs of one backend: creation, lookup,
// cancellation and — when given a JobStore — durability: running jobs
// checkpoint periodically, survive a process kill, and resume either
// explicitly (Resume, POST /v1/jobs/{id}:resume) or wholesale at boot
// (ResumeAll). It is the state behind the HTTP job API (Handler) but is
// usable directly. Safe for concurrent use.
type Manager struct {
	backend         hdb.Interface
	store           JobStore
	checkpointEvery int
	batch           bool           // default every job to lockstep-cohort execution
	degrade         bool           // degradation ladder: violation → bool variant → quarantine
	idPrefix        string         // job-ID prefix ("job" → job-000001); replicas use distinct prefixes
	flights         *obs.FlightSet // per-job lifecycle event rings (see metrics.go)

	// resumeMu serializes Resume end to end, so two concurrent resume
	// requests for one job cannot both pass the is-it-running check.
	resumeMu sync.Mutex

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // creation order, for stable listings
	seq   int
}

// ManagerOption customises a Manager.
type ManagerOption func(*Manager)

// WithStore makes the Manager durable: every running job checkpoints its
// session into st, completed jobs delete their checkpoint, and Resume /
// ResumeAll rebuild jobs from whatever st holds.
func WithStore(st JobStore) ManagerOption {
	return func(m *Manager) { m.store = st }
}

// WithCheckpointEvery sets how many rounds elapse between job checkpoints
// (default 4; only meaningful with WithStore).
func WithCheckpointEvery(rounds int) ManagerOption {
	return func(m *Manager) { m.checkpointEvery = rounds }
}

// WithBatch makes every job run its workers as a lockstep cohort with
// batched, deduplicated probes (Config.Batch): same estimates for the same
// (seed, workers), strictly fewer backend queries. Individual requests may
// still opt in per job via their own Batch field on a Manager without this
// option.
func WithBatch() ManagerOption {
	return func(m *Manager) { m.batch = true }
}

// WithDegrade arms the graceful-degradation ladder: a job whose session
// dies on an hdb.InvariantViolation (raised by a guard.Validator below, or
// by core's own consistency checks) is restarted in place as the
// Boolean-check estimator variant — same ID, same stopping rules, the
// backend-query spend carried over so budgets and the exactly-once cost
// accounting hold across the demotion. The suspect COUNT-based passes are
// discarded (they are exactly what the violation impeaches); the spend
// they cost is not. A second violation after demotion quarantines the job.
// Without this option a violation fails the job like any other error.
func WithDegrade() ManagerOption {
	return func(m *Manager) { m.degrade = true }
}

// WithJobIDPrefix replaces the default "job" ID prefix (ids become
// "<prefix>-000001"). Fleet replicas sharing one JobStore each use a distinct
// prefix (e.g. "job-<node>") so two replicas can never mint the same ID. The
// prefix must be a valid job-ID fragment (no path separators or '@').
func WithJobIDPrefix(prefix string) ManagerOption {
	return func(m *Manager) {
		if prefix != "" && checkJobID(prefix) == nil && !strings.Contains(prefix, "@") {
			m.idPrefix = prefix
		}
	}
}

// NewManager builds a Manager serving sessions against backend. The
// backend's Query must be safe for concurrent use (hdb.Table and
// webform.Client both are).
func NewManager(backend hdb.Interface, opts ...ManagerOption) *Manager {
	m := &Manager{backend: backend, jobs: make(map[string]*Job), checkpointEvery: 4,
		idPrefix: "job", flights: obs.NewFlightSet()}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// jobEnvelope is what a durable Manager persists per job: the spec (needed
// to recompile the plan on resume) next to the session checkpoint, plus the
// job state at write time — ResumeAll auto-restarts only jobs that were
// running when the process died; explicitly cancelled or failed jobs keep
// their checkpoint but wait for an explicit Resume.
type jobEnvelope struct {
	Version int                `json:"version"`
	ID      string             `json:"id"`
	State   JobState           `json:"state"`
	Spec    Spec               `json:"spec"`
	Session *SessionCheckpoint `json:"session"`
}

// sink returns the job's checkpoint sink, or nil for a storeless Manager.
func (m *Manager) sink(id string, spec Spec) func(*SessionCheckpoint) error {
	if m.store == nil {
		return nil
	}
	state := JobRunning
	if spec.Degraded {
		state = JobDegraded // so ResumeAll knows, and keeps, the demotion
	}
	return func(cp *SessionCheckpoint) error {
		blob, err := json.Marshal(jobEnvelope{Version: SessionCheckpointVersion, ID: id, State: state, Spec: spec, Session: cp})
		if err != nil {
			return err
		}
		return m.store.Put(id, blob)
	}
}

// markStored rewrites the job's stored envelope with its terminal state, so
// a later ResumeAll knows the stop was deliberate. A job killed before its
// first checkpoint has nothing to mark.
func (m *Manager) markStored(id string, state JobState) {
	// Serialize with Resume: if a newer incarnation of this job is already
	// running, its checkpoints own the envelope — do not stamp a stale
	// terminal state over them.
	m.resumeMu.Lock()
	defer m.resumeMu.Unlock()
	m.mu.Lock()
	cur := m.jobs[id]
	m.mu.Unlock()
	if cur != nil {
		if s, _ := cur.State(); s.Active() {
			return
		}
	}
	blob, err := m.store.Get(id)
	if err != nil {
		return
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return
	}
	env.State = state
	if blob, err = json.Marshal(env); err == nil {
		_ = m.store.Put(id, blob)
	}
}

// Start validates the spec, builds a session and launches it in the
// background, returning the tracked job immediately.
func (m *Manager) Start(spec Spec, cfg Config) (*Job, error) {
	if hdb.IsCountFree(m.backend) && !spec.Degraded && spec.Algo != "bool" {
		// A count-free interface cannot answer the COUNT-based variant's
		// probes truthfully; start on the bottom rung of the ladder.
		spec.Degraded = true
		spec.DegradedReason = "count-free backend interface"
	}
	factory, labels, err := spec.NewFactory(m.backend.Schema())
	if err != nil {
		return nil, err
	}
	if cfg.TargetRSE == 0 && cfg.MaxPasses == 0 && cfg.MaxCost == 0 && cfg.MaxDuration == 0 {
		// A job with no rule would run to the pass hard cap; default to the
		// sort of budget a per-IP-limited hidden database allows per day.
		cfg.MaxCost = 1000
	}
	if m.batch {
		cfg.Batch = true
	}

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("%s-%06d", m.idPrefix, m.seq)
	m.mu.Unlock()

	if m.store == nil {
		cfg.CheckpointEvery = 0 // durability needs a store; the knob is advisory
	} else {
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = m.checkpointEvery
		}
		cfg.CheckpointSink = m.sink(id, spec)
	}
	flight := m.flights.Recorder(id, flightCapacity)
	cfg.Flight = flight
	sess, err := New(m.backend, factory, cfg)
	if err != nil {
		return nil, err
	}
	flight.Record("job.start", 0)
	job := &Job{ID: id, Spec: spec, Config: cfg, Labels: labels, Created: time.Now(),
		Violation: spec.DegradedReason, sess: sess}
	m.launch(job)
	return job, nil
}

// flightCapacity is each job's flight-recorder window: enough to hold the
// tail of a long session (rounds + checkpoints) without unbounded growth.
const flightCapacity = 256

// launch registers the job (replacing a previous incarnation under the same
// ID, keeping the listing order stable), runs its session in the background
// and settles its terminal state. A successfully completed job deletes its
// stored checkpoint; failed and cancelled jobs keep theirs so they can be
// resumed.
func (m *Manager) launch(job *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	job.cancel = cancel
	job.state = JobRunning
	if job.Spec.Degraded {
		job.state = JobDegraded
	}
	job.done = make(chan struct{})

	m.mu.Lock()
	if _, exists := m.jobs[job.ID]; !exists {
		m.order = append(m.order, job.ID)
	}
	m.jobs[job.ID] = job
	m.mu.Unlock()

	go func() {
		defer close(job.done) // after the final store writes: Drain waits on this
		defer cancel()
		_, err := job.sess.Run(ctx)
		if vio, ok := hdb.AsInvariantViolation(err); ok && m.degrade {
			if m.settleViolation(job, vio) {
				return // a degraded incarnation replaced this job and owns the envelope
			}
			return // quarantined: settleViolation stamped state and envelope
		}
		job.mu.Lock()
		switch {
		case err == nil:
			job.state = JobDone
		case errors.Is(err, context.Canceled):
			job.state = JobCancelled
		default:
			job.state = JobFailed
			job.err = err.Error()
		}
		state := job.state
		job.mu.Unlock()
		if m.store != nil {
			if state == JobDone {
				// The job finished: its checkpoint has nothing left to resume.
				_ = m.store.Delete(job.ID)
			} else {
				// Cancelled/failed: keep the checkpoint for an explicit
				// Resume, but record that the stop was deliberate so a
				// restart does not resurrect it.
				m.markStored(job.ID, state)
			}
		}
		if f := job.sess.cfg.Flight; f != nil {
			f.Record("job."+string(state), 0)
		}
	}()
}

// settleViolation is the degradation ladder's decision point, called from
// the launch goroutine when a session dies on an invariant violation.
// First violation: the job restarts in place as the Boolean-check variant
// and the new incarnation owns the ID (returns true). A violation after
// demotion — the backend lies even about overflow classifications — or a
// demotion that fails to build quarantines the job (returns false).
func (m *Manager) settleViolation(old *Job, vio *hdb.InvariantViolation) bool {
	flight := m.flights.Recorder(old.ID, flightCapacity)
	snap := old.Snapshot()
	flight.Record("violation:"+string(vio.Kind), snap.Passes)
	if old.Spec.Degraded {
		m.quarantine(old, vio, flight)
		return false
	}
	spec := old.Spec
	spec.Degraded = true
	spec.DegradedReason = vio.Error()
	factory, labels, err := spec.NewFactory(m.backend.Schema())
	if err != nil {
		m.quarantine(old, vio, flight)
		return false
	}
	cfg := old.Config
	if m.store != nil {
		cfg.CheckpointSink = m.sink(old.ID, spec)
	}
	sess, err := New(m.backend, factory, cfg)
	if err != nil {
		m.quarantine(old, vio, flight)
		return false
	}
	// Exactly-once accounting: the demoted incarnation's backend spend —
	// including what the impeached passes cost — carries into the bool
	// session, so MaxCost budgets and Snapshot.Cost stay truthful across
	// the demotion. The pass values themselves are discarded: they are
	// precisely what the violation impeaches.
	sess.costBase = snap.Cost
	if m.store != nil {
		// Persist the demotion immediately — the unstarted session's
		// checkpoint is sound (workers idle) and carries the spend base. A
		// kill before the bool incarnation's first periodic checkpoint
		// would otherwise resurrect the impeached COUNT path (or, worse,
		// restore hd estimator state into a bool plan).
		if cp, cperr := sess.Checkpoint(); cperr == nil {
			if blob, merr := json.Marshal(jobEnvelope{Version: SessionCheckpointVersion,
				ID: old.ID, State: JobDegraded, Spec: spec, Session: cp}); merr == nil {
				_ = m.store.Put(old.ID, blob)
			}
		}
	}
	obsDegradations.Inc()
	flight.Record("job.degrade", snap.Passes)
	// Anyone still holding the old *Job sees the demotion, not a phantom
	// terminal state.
	old.mu.Lock()
	old.state = JobDegraded
	old.mu.Unlock()
	nj := &Job{ID: old.ID, Spec: spec, Config: cfg, Labels: labels,
		Created: old.Created, Resumed: old.Resumed, Violation: vio.Error(), sess: sess}
	m.launch(nj)
	return true
}

// quarantine stamps the terminal quarantined state on job and its stored
// envelope. The checkpoint is kept: only an explicit Resume — a human
// decision that the backend is trustworthy again — revives the job.
func (m *Manager) quarantine(job *Job, vio *hdb.InvariantViolation, flight *obs.Recorder) {
	job.mu.Lock()
	job.state = JobQuarantined
	job.err = vio.Error()
	job.mu.Unlock()
	obsQuarantines.Inc()
	if m.store != nil {
		m.markStored(job.ID, JobQuarantined)
	}
	flight.Record("job.quarantined", 0)
}

// Resume rebuilds the identified job from the Manager's store and relaunches
// it. It fails without a store, for unknown IDs, and for jobs currently
// running. The resumed job keeps its ID and listing position; Config and
// Labels come from the stored envelope.
func (m *Manager) Resume(id string) (*Job, error) {
	if m.store == nil {
		return nil, fmt.Errorf("estsvc: manager has no job store")
	}
	m.resumeMu.Lock()
	defer m.resumeMu.Unlock()
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok {
		if state, _ := j.State(); state.Active() {
			m.mu.Unlock()
			return nil, fmt.Errorf("estsvc: job %s: %w", id, ErrJobRunning)
		}
	}
	// Keep fresh IDs ahead of resumed ones so a restarted service never
	// hands out an ID the store still remembers. Foreign-prefix IDs (a
	// stolen replica's jobs) don't touch the sequence — their prefix can
	// never collide with ours.
	if n, ok := parseJobSeq(m.idPrefix, id); ok && n > m.seq {
		m.seq = n
	}
	m.mu.Unlock()

	blob, err := m.store.Get(id)
	if err != nil {
		return nil, err
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("estsvc: corrupt checkpoint for %s: %w", id, err)
	}
	if env.Session == nil {
		return nil, fmt.Errorf("estsvc: checkpoint for %s has no session state", id)
	}
	sess, labels, err := Resume(m.backend, env.Spec, env.Session, m.sink(id, env.Spec))
	if err != nil {
		return nil, err
	}
	// A resumed job keeps appending to its original flight ring (FlightSet is
	// get-or-create), so the dump shows the kill/resume seam in one timeline.
	flight := m.flights.Recorder(id, flightCapacity)
	sess.cfg.Flight = flight
	obsResumes.Inc()
	job := &Job{
		ID: id, Spec: env.Spec, Config: sess.cfg, Labels: labels,
		Created: time.Now(), Resumed: true, Violation: env.Spec.DegradedReason, sess: sess,
	}
	flight.Record("job.resume", env.Session.Passes)
	m.launch(job)
	return job, nil
}

// ResumeAll resumes every job the store holds whose last recorded state was
// running — the boot path of a durable service: a killed process restarts
// and continues all its in-flight jobs. Jobs whose checkpoints record a
// deliberate stop (cancelled, failed) are left alone; resume those
// explicitly with Resume. Jobs that fail to resume are skipped and
// reported; the rest still launch.
func (m *Manager) ResumeAll() ([]*Job, error) {
	if m.store == nil {
		return nil, nil
	}
	ids, err := m.store.List()
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	var errs []string
	for _, id := range ids {
		if blob, err := m.store.Get(id); err == nil {
			var env jobEnvelope
			if json.Unmarshal(blob, &env) == nil && env.State != "" && !env.State.Active() {
				continue // deliberate stop: waits for an explicit Resume
			}
		}
		job, err := m.Resume(id)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", id, err))
			continue
		}
		jobs = append(jobs, job)
	}
	if len(errs) > 0 {
		return jobs, fmt.Errorf("estsvc: %d job(s) failed to resume: %s", len(errs), strings.Join(errs, "; "))
	}
	return jobs, nil
}

// parseJobSeq extracts the sequence number from an ID this Manager's prefix
// issued.
func parseJobSeq(prefix, id string) (int, bool) {
	num, ok := strings.CutPrefix(id, prefix+"-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// RunningJobs counts jobs currently in JobRunning state — the occupancy
// number admission control and readiness probes key off.
func (m *Manager) RunningJobs() int {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	n := 0
	for _, j := range jobs {
		if state, _ := j.State(); state.Active() {
			n++
		}
	}
	return n
}

// EnvelopeState peeks the job lifecycle state recorded in a stored envelope
// without decoding the session payload — how a fleet reaper decides whether
// an orphaned envelope is steal-worthy (running) or deliberately stopped.
func EnvelopeState(blob []byte) (JobState, bool) {
	var env struct {
		State JobState `json:"state"`
	}
	if json.Unmarshal(blob, &env) != nil || env.State == "" {
		return "", false
	}
	return env.State, true
}

// Get returns the job with the given id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists all jobs in creation order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

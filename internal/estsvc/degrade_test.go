package estsvc

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"hdunbiased/internal/guard"
	"hdunbiased/internal/hdb"
)

// lyingBackend corrupts results the way a hostile top-k interface does:
// after `after` queries it drops a tuple from an overflowing page while
// keeping the overflow flag — the overflow-short contradiction a
// guard.Validator detects on sight. every=0 lies exactly once (a glitching
// interface that then behaves); every=1 lies on every eligible page (a
// persistently hostile one). delay, when set, slows each post-warmup query
// to widen race-free cancellation windows in the kill+resume test.
type lyingBackend struct {
	inner hdb.Interface
	after int64
	every int64
	delay time.Duration

	mu    sync.Mutex
	calls int64
	lies  int64
}

func (l *lyingBackend) Schema() hdb.Schema { return l.inner.Schema() }
func (l *lyingBackend) K() int             { return l.inner.K() }

func (l *lyingBackend) Query(q hdb.Query) (hdb.Result, error) {
	l.mu.Lock()
	l.calls++
	n := l.calls
	l.mu.Unlock()
	res, err := l.inner.Query(q)
	if err != nil || n <= l.after {
		return res, err
	}
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
	if !res.Overflow || len(res.Tuples) < 2 {
		return res, nil
	}
	l.mu.Lock()
	lie := l.every > 0 || l.lies == 0
	if lie {
		l.lies++
	}
	l.mu.Unlock()
	if lie {
		res = hdb.Result{Tuples: res.Tuples[:len(res.Tuples)-1], Overflow: true}
	}
	return res, nil
}

func (l *lyingBackend) Lies() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lies
}

// waitJob polls until the job under id leaves its active states and
// returns the final incarnation (the degradation ladder swaps Job objects
// under a stable ID).
func waitJob(t *testing.T, m *Manager, id string, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if j, ok := m.Get(id); ok {
			if state, _ := j.State(); !state.Active() {
				<-j.done // let the launch goroutine settle its store writes
				return j
			}
		}
		if time.Now().After(deadline) {
			j, _ := m.Get(id)
			state, errMsg := j.State()
			t.Fatalf("job %s still %s (%s) after %v", id, state, errMsg, timeout)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDegraded polls until the ladder has swapped in a demoted incarnation
// (or the job settles first, which fails the test).
func waitDegraded(t *testing.T, m *Manager, id string, timeout time.Duration) *Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if j, ok := m.Get(id); ok {
			if j.Spec.Degraded {
				return j
			}
			if state, _ := j.State(); !state.Active() {
				t.Fatalf("job settled (%s) without degrading", state)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("job never degraded")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func flightNames(t *testing.T, m *Manager, id string) map[string]bool {
	t.Helper()
	rec, ok := m.Flights().Get(id)
	if !ok {
		t.Fatalf("no flight ring for %s", id)
	}
	names := make(map[string]bool)
	for _, e := range rec.Events() {
		names[e.Name] = true
	}
	return names
}

// TestJobDegradesOnViolation is the ladder's happy path: a COUNT-based job
// over a backend that lies once is caught by the validator, demoted in
// place to the Boolean-check variant, and converges against the
// now-honest backend — with every backend query accounted exactly once
// across both incarnations.
func TestJobDegradesOnViolation(t *testing.T) {
	const rows = 3000
	tbl := autoTable(t, rows, 20)
	bottom := hdb.NewCounter(tbl) // ground truth: queries the backend really saw
	liar := &lyingBackend{inner: bottom, after: 50}
	v := guard.NewValidator(liar, guard.ValidatorConfig{ReplayEvery: 16})
	m := NewManager(v, WithStore(NewMemStore()), WithDegrade(), WithCheckpointEvery(1))

	job, err := m.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 11, TargetRSE: 0.08, MaxPasses: 200000})
	if err != nil {
		t.Fatal(err)
	}
	// The ring is a bounded window; read the demotion events before a long
	// converging run evicts them.
	waitDegraded(t, m, job.ID, 60*time.Second)
	early := flightNames(t, m, job.ID)
	for _, want := range []string{"job.start", "violation:overflow-short", "job.degrade"} {
		if !early[want] {
			t.Errorf("flight ring missing %q at demotion (have %v)", want, early)
		}
	}

	final := waitJob(t, m, job.ID, 120*time.Second)

	if liar.Lies() == 0 {
		t.Fatal("backend never lied — test proves nothing")
	}
	state, errMsg := final.State()
	if state != JobDone {
		t.Fatalf("final state = %s (%s), want done", state, errMsg)
	}
	if !final.Spec.Degraded || final.Violation == "" {
		t.Fatalf("job not demoted: degraded=%v violation=%q", final.Spec.Degraded, final.Violation)
	}
	if !strings.Contains(final.Violation, "overflow-short") {
		t.Errorf("violation %q does not name the invariant", final.Violation)
	}

	// Exactly-once accounting: backend-observed queries = session spend
	// across both incarnations + the validator's replay probes.
	snap := final.Snapshot()
	if got, want := bottom.Count(), snap.Cost+v.Replays(); got != want {
		t.Errorf("backend saw %d queries, session accounts %d (+%d replays)",
			got, snap.Cost, v.Replays())
	}

	// The Boolean-check incarnation converged.
	if len(snap.Measures) == 0 {
		t.Fatal("no measures")
	}
	mean := snap.Measures[0].Mean
	if rel := math.Abs(mean-rows) / rows; rel > 0.4 {
		t.Errorf("degraded estimate %.0f vs true %d (rel err %.2f)", mean, rows, rel)
	}

	// The terminal event joins the same (windowed) timeline.
	if names := flightNames(t, m, job.ID); !names["job.done"] {
		t.Errorf("flight ring missing job.done (have %v)", names)
	}

	// And on the wire.
	p := jobPayload(final, true)
	if !p.Degraded || p.Violation == "" || p.State != "done" || !p.Spec.Degraded {
		t.Errorf("payload = %+v", p)
	}
}

// TestJobQuarantinedOnSecondViolation: a backend that keeps lying after the
// demotion — it corrupts even overflow classifications — lands the job in
// quarantine: terminal, checkpoint kept, not auto-resumed.
func TestJobQuarantinedOnSecondViolation(t *testing.T) {
	tbl := autoTable(t, 3000, 20)
	liar := &lyingBackend{inner: tbl, after: 20, every: 1}
	v := guard.NewValidator(liar, guard.ValidatorConfig{})
	store := NewMemStore()
	m := NewManager(v, WithStore(store), WithDegrade(), WithCheckpointEvery(1))

	job, err := m.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 3, TargetRSE: 0.05, MaxPasses: 200000})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, m, job.ID, 120*time.Second)

	state, errMsg := final.State()
	if state != JobQuarantined {
		t.Fatalf("final state = %s (%s), want quarantined", state, errMsg)
	}
	if !strings.Contains(errMsg, "invariant violation") {
		t.Errorf("quarantine error %q does not carry the violation", errMsg)
	}
	if m.RunningJobs() != 0 {
		t.Errorf("quarantined job still counts as running")
	}
	p := jobPayload(final, true)
	if p.State != "quarantined" || !p.Degraded || p.Violation == "" {
		t.Errorf("payload = %+v", p)
	}
	names := flightNames(t, m, job.ID)
	for _, want := range []string{"job.degrade", "job.quarantined"} {
		if !names[want] {
			t.Errorf("flight ring missing %q (have %v)", want, names)
		}
	}

	// The envelope records the deliberate stop...
	blob, err := store.Get(job.ID)
	if err != nil {
		t.Fatalf("quarantine deleted the checkpoint: %v", err)
	}
	if st, ok := EnvelopeState(blob); !ok || st != JobQuarantined {
		t.Errorf("envelope state = %v, want quarantined", st)
	}
	// ...so a restarted service leaves the job alone.
	m2 := NewManager(v, WithStore(store), WithDegrade())
	resumed, err := m2.ResumeAll()
	if err != nil || len(resumed) != 0 {
		t.Errorf("ResumeAll resurrected a quarantined job: %v, %v", resumed, err)
	}
}

// TestDegradedJobSurvivesKillResume is the kill+resume seam: a job demoted
// mid-flight is cancelled (the kill), then resumed on a fresh Manager over
// the same store — and comes back as the Boolean-check variant with its
// cumulative spend intact, never as the impeached COUNT path.
func TestDegradedJobSurvivesKillResume(t *testing.T) {
	const rows = 3000
	tbl := autoTable(t, rows, 20)
	bottom := hdb.NewCounter(tbl)
	liar := &lyingBackend{inner: bottom, after: 50, delay: 200 * time.Microsecond}
	v := guard.NewValidator(liar, guard.ValidatorConfig{ReplayEvery: 16})
	store := NewMemStore()
	m := NewManager(v, WithStore(store), WithDegrade(), WithCheckpointEvery(1))

	job, err := m.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 5, MaxCost: 2500})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the demoted incarnation has checkpointed (envelope state
	// degraded), then kill it.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if blob, err := store.Get(job.ID); err == nil {
			if st, _ := EnvelopeState(blob); st == JobDegraded {
				break
			}
		}
		if j, ok := m.Get(job.ID); ok {
			if st, _ := j.State(); !st.Active() {
				t.Fatalf("job settled (%s) before the kill window", st)
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no degraded checkpoint appeared")
		}
		time.Sleep(200 * time.Microsecond)
	}
	cur, _ := m.Get(job.ID)
	cur.Cancel()
	killed := waitJob(t, m, job.ID, 60*time.Second)
	killSnap := killed.Snapshot()
	if state, _ := killed.State(); state != JobCancelled {
		t.Fatalf("killed job state = %s", state)
	}

	// The envelope's spend base: the kill loses the queries made after the
	// last checkpoint, and the accounting identity below owes exactly them.
	blob, err := store.Get(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil || env.Session == nil {
		t.Fatalf("bad envelope: %v", err)
	}
	envCost := env.Session.Cost

	// Fresh Manager, same store and backend stack: the resume seam.
	m2 := NewManager(v, WithStore(store), WithDegrade(), WithCheckpointEvery(1))
	resumed, err := m2.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Spec.Degraded || resumed.Violation == "" {
		t.Fatalf("resume lost the demotion: %+v", resumed.Spec)
	}
	if state, _ := resumed.State(); state != JobDegraded {
		t.Fatalf("resumed state = %s, want degraded", state)
	}
	if names := flightNames(t, m2, job.ID); !names["job.resume"] {
		t.Errorf("resumed flight ring missing job.resume (have %v)", names)
	}
	final := waitJob(t, m2, job.ID, 120*time.Second)
	state, errMsg := final.State()
	if state != JobDone {
		t.Fatalf("resumed job ended %s (%s)", state, errMsg)
	}
	snap := final.Snapshot()
	if snap.Cost < envCost {
		t.Errorf("spend went backwards across the seam: %d then %d", envCost, snap.Cost)
	}
	// Exactly-once across demotion AND the kill+resume seam: the backend
	// saw the accounted spend, the validator's replays, plus exactly the
	// queries the kill discarded (issued after the last checkpoint).
	lost := killSnap.Cost - envCost
	if got, want := bottom.Count(), snap.Cost+v.Replays()+lost; got != want {
		t.Errorf("backend saw %d queries, session accounts %d (+%d replays, +%d lost at the kill)",
			got, snap.Cost, v.Replays(), lost)
	}
	mean := snap.Measures[0].Mean
	if rel := math.Abs(mean-rows) / rows; rel > 0.5 {
		t.Errorf("estimate %.0f vs true %d (rel err %.2f)", mean, rows, rel)
	}
	if names := flightNames(t, m2, job.ID); !names["job.done"] {
		t.Errorf("resumed flight ring missing job.done (have %v)", names)
	}
}

// countFreeTable marks a table as count-free, the way a Boolean
// (checkbox-only) web interface advertises itself.
type countFreeTable struct{ hdb.Interface }

func (countFreeTable) CountFree() bool { return true }

// TestCountFreeBackendStartsDegraded: the ladder's capability rung — a
// count-free interface can never satisfy the COUNT-based variant, so jobs
// start on the bottom rung instead of failing later.
func TestCountFreeBackendStartsDegraded(t *testing.T) {
	tbl := autoTable(t, 1000, 10)
	m := NewManager(countFreeTable{Interface: tbl})
	job, err := m.Start(Spec{Algo: "hd"}, Config{Workers: 2, Seed: 1, MaxPasses: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Spec.Degraded || !strings.Contains(job.Violation, "count-free") {
		t.Fatalf("count-free backend not demoted at start: %+v", job.Spec)
	}
	if state, _ := job.State(); state != JobDegraded {
		t.Fatalf("state = %s, want degraded", state)
	}
	final := waitJob(t, m, job.ID, 60*time.Second)
	if state, errMsg := final.State(); state != JobDone {
		t.Fatalf("count-free job ended %s (%s)", state, errMsg)
	}
}

// TestViolationFailsJobWithoutLadder: without WithDegrade a violation is an
// ordinary failure — no silent demotion the operator didn't opt into.
func TestViolationFailsJobWithoutLadder(t *testing.T) {
	tbl := autoTable(t, 3000, 20)
	liar := &lyingBackend{inner: tbl, after: 20, every: 1}
	v := guard.NewValidator(liar, guard.ValidatorConfig{})
	m := NewManager(v)
	job, err := m.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 2, MaxPasses: 100000})
	if err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, m, job.ID, 60*time.Second)
	state, errMsg := final.State()
	if state != JobFailed || !strings.Contains(errMsg, "invariant violation") {
		t.Fatalf("state = %s (%s), want failed with the violation", state, errMsg)
	}
	if final.Spec.Degraded {
		t.Error("ladder ran without being armed")
	}
}

package estsvc

import (
	"fmt"

	"hdunbiased/internal/core"
	"hdunbiased/internal/hdb"
	"hdunbiased/internal/querytree"
)

// Spec is a JSON-able description of which estimator a session runs — the
// request-level counterpart of core's named constructors. The job API posts
// it verbatim; cmd binaries build it from flags.
type Spec struct {
	// Algo picks the estimator: "hd" (weight adjustment + divide-&-conquer,
	// the default) or "bool" (plain backtracking drill-down).
	Algo string `json:"algo,omitempty"`
	// R is the drill-downs per subtree (hd only; default 4).
	R int `json:"r,omitempty"`
	// DUB is the max subdomain size per divide-&-conquer layer (hd only).
	// 0 keeps the default of 32; a negative value disables D&C entirely
	// (weight adjustment alone over a single layer).
	DUB int `json:"dub,omitempty"`
	// Where is the conjunctive selection condition, attribute name to
	// category code.
	Where map[string]int `json:"where,omitempty"`
	// Sum lists measure names whose SUMs are estimated alongside COUNT.
	Sum []string `json:"sum,omitempty"`
	// AssumeBaseOverflows skips the base query (required when the backend
	// rejects it, e.g. a required-attribute webform rule).
	AssumeBaseOverflows bool `json:"assume_base_overflows,omitempty"`
	// Degraded marks a spec the degradation ladder has demoted: Compile
	// ignores Algo and builds the Boolean-check estimator, which trusts
	// only overflow/underflow classifications — never the counts a hostile
	// interface can lie about. The flag rides the job envelope, so a
	// kill+resume keeps the demotion instead of resurrecting the COUNT
	// path against a backend already caught lying.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason records why the ladder demoted the spec (the
	// invariant violation, or "count-free backend interface").
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// Compiled is a spec resolved against a schema: the shared immutable plan,
// the measures, the core config template (Seed unset — workers get their
// substream seed at construction) and the measure labels. Restore paths use
// it to rebuild exactly the estimator a checkpointed job ran.
type Compiled struct {
	Plan     *querytree.Plan
	Measures []core.Measure
	Config   core.Config
	Labels   []string
}

// Factory returns the worker factory over the compiled spec.
func (c Compiled) Factory() Factory {
	return func(client hdb.Client, seed int64) (*core.Estimator, error) {
		cfg := c.Config
		cfg.Seed = seed
		return core.NewWithSession(client, c.Plan, c.Measures, cfg)
	}
}

// NewFactory compiles the spec against a schema into a worker factory plus
// the measure labels ("COUNT", "SUM(price)", ...) in Values order. The plan
// is built once and shared: it is immutable during estimation, unlike the
// per-worker weight trees.
func (sp Spec) NewFactory(schema hdb.Schema) (Factory, []string, error) {
	c, err := sp.Compile(schema)
	if err != nil {
		return nil, nil, err
	}
	return c.Factory(), c.Labels, nil
}

// Compile resolves the spec against a schema. The plan is built once and
// shared: it is immutable during estimation, unlike the per-worker weight
// trees.
func (sp Spec) Compile(schema hdb.Schema) (Compiled, error) {
	cond, err := sp.cond(schema)
	if err != nil {
		return Compiled{}, err
	}
	measures := []core.Measure{core.CountMeasure()}
	labels := []string{"COUNT"}
	for _, name := range sp.Sum {
		mi := schema.MeasureIndex(name)
		if mi < 0 {
			return Compiled{}, fmt.Errorf("estsvc: unknown measure %q (schema has %v)", name, schema.Measures)
		}
		measures = append(measures, core.NumMeasure(mi))
		labels = append(labels, "SUM("+name+")")
	}

	algo := sp.Algo
	if algo == "" {
		algo = "hd"
	}
	if sp.Degraded {
		algo = "bool" // the ladder's demotion overrides the requested algo
	}
	var (
		opts querytree.Options
		cfg  core.Config
	)
	switch algo {
	case "hd":
		r, dub := sp.R, sp.DUB
		if r == 0 {
			r = 4
		}
		switch {
		case dub < 0:
			dub = 0 // explicit no-D&C
		case dub == 0:
			dub = 32
		}
		opts.DUB = dub
		cfg = core.Config{R: r, WeightAdjust: true}
	case "bool":
		cfg = core.Config{R: 1}
	default:
		return Compiled{}, fmt.Errorf("estsvc: unknown algo %q (want hd or bool)", sp.Algo)
	}
	cfg.AssumeBaseOverflows = sp.AssumeBaseOverflows
	plan, err := querytree.New(schema, cond, opts)
	if err != nil {
		return Compiled{}, err
	}
	return Compiled{Plan: plan, Measures: measures, Config: cfg, Labels: labels}, nil
}

func (sp Spec) cond(schema hdb.Schema) (hdb.Query, error) {
	var q hdb.Query
	// Iterate in schema order so the base query is deterministic regardless
	// of Go's map iteration order.
	for ai, a := range schema.Attrs {
		code, ok := sp.Where[a.Name]
		if !ok {
			continue
		}
		if code < 0 || code >= a.Dom {
			return hdb.Query{}, fmt.Errorf("estsvc: value %d out of domain [0,%d) for %q", code, a.Dom, a.Name)
		}
		q = q.And(ai, uint16(code))
	}
	for name := range sp.Where {
		if schema.AttrIndex(name) < 0 {
			return hdb.Query{}, fmt.Errorf("estsvc: unknown attribute %q in where", name)
		}
	}
	return q, nil
}

package estsvc

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strings"
	"time"
)

// The job API is deliberately small: submit a session, poll it, cancel it,
// resume it.
//
//	POST /v1/estimate            {spec..., workers, seed, target_rse, ...} -> 202 {id}
//	GET  /v1/jobs                -> [{id, state, snapshot}, ...]
//	GET  /v1/jobs/{id}           -> {id, state, spec, snapshot}
//	POST /v1/jobs/{id}/cancel    -> {id, state, snapshot}
//	POST /v1/jobs/{id}:resume    -> {id, state, snapshot}   (durable Managers only)
//
// The cancel and resume verbs accept both the path form (/v1/jobs/{id}/cancel)
// and the Google-style colon form (/v1/jobs/{id}:cancel). Snapshots stream
// while the job runs, so a dashboard can poll the job URL and watch the
// relative standard error shrink.

// EstimateRequest is the POST /v1/estimate body: the estimator spec plus
// session knobs. Zero-valued stopping rules fall back to Manager.Start's
// default budget.
type EstimateRequest struct {
	Spec
	Workers     int     `json:"workers,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
	TargetRSE   float64 `json:"target_rse,omitempty"`
	MinPasses   int     `json:"min_passes,omitempty"`
	MaxPasses   int     `json:"max_passes,omitempty"`
	MaxCost     int64   `json:"max_cost,omitempty"`
	MaxMillis   int64   `json:"max_millis,omitempty"`
	CacheShards int     `json:"cache_shards,omitempty"`
	// CheckpointEvery overrides the durable Manager's checkpoint cadence in
	// rounds (ignored by Managers without a store).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Batch runs the session's workers as a lockstep cohort with batched,
	// deduplicated probes (see Config.Batch). Same estimates, fewer queries.
	Batch bool `json:"batch,omitempty"`
}

// Config converts the request's session knobs.
func (r EstimateRequest) Config() Config {
	return Config{
		Workers:         r.Workers,
		Seed:            r.Seed,
		TargetRSE:       r.TargetRSE,
		MinPasses:       r.MinPasses,
		MaxPasses:       r.MaxPasses,
		MaxCost:         r.MaxCost,
		MaxDuration:     time.Duration(r.MaxMillis) * time.Millisecond,
		CacheShards:     r.CacheShards,
		CheckpointEvery: r.CheckpointEvery,
		Batch:           r.Batch,
	}
}

// MeasurePayload is one measure's estimate in a job response. RSE is null
// when undefined (zero mean with spread) — JSON has no Inf.
type MeasurePayload struct {
	Label  string   `json:"label"`
	Mean   float64  `json:"mean"`
	StdErr float64  `json:"stderr"`
	RSE    *float64 `json:"rse"`
}

// SnapshotPayload is the wire form of a Snapshot.
type SnapshotPayload struct {
	Measures      []MeasurePayload `json:"measures"`
	Passes        int64            `json:"passes"`
	Cost          int64            `json:"cost"`
	CacheHits     int64            `json:"cache_hits"`
	ElapsedMillis int64            `json:"elapsed_millis"`
	Exact         bool             `json:"exact"`
	Done          bool             `json:"done"`
	Reason        string           `json:"reason,omitempty"`
}

// JobPayload is the wire form of a job.
type JobPayload struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Degraded is true once the degradation ladder has demoted the job to
	// the Boolean-check variant; Violation carries the invariant violation
	// (or capability detection) that caused the demotion or quarantine.
	Degraded  bool            `json:"degraded,omitempty"`
	Violation string          `json:"violation,omitempty"`
	Spec      *Spec           `json:"spec,omitempty"`
	Snapshot  SnapshotPayload `json:"snapshot"`
}

type errorPayload struct {
	Error string `json:"error"`
}

func snapshotPayload(labels []string, s Snapshot) SnapshotPayload {
	p := SnapshotPayload{
		Measures:      make([]MeasurePayload, 0, len(s.Measures)),
		Passes:        s.Passes,
		Cost:          s.Cost,
		CacheHits:     s.CacheHits,
		ElapsedMillis: s.Elapsed.Milliseconds(),
		Exact:         s.Exact,
		Done:          s.Done,
		Reason:        string(s.Reason),
	}
	for mi, m := range s.Measures {
		mp := MeasurePayload{Mean: m.Mean, StdErr: m.StdErr}
		if mi < len(labels) {
			mp.Label = labels[mi]
		}
		if !math.IsInf(m.RSE, 0) && !math.IsNaN(m.RSE) {
			rse := m.RSE
			mp.RSE = &rse
		}
		p.Measures = append(p.Measures, mp)
	}
	return p
}

func jobPayload(j *Job, withSpec bool) JobPayload {
	state, errMsg := j.State()
	p := JobPayload{
		ID:        j.ID,
		State:     string(state),
		Error:     errMsg,
		Degraded:  j.Spec.Degraded,
		Violation: j.Violation,
		Snapshot:  snapshotPayload(j.Labels, j.Snapshot()),
	}
	if state == JobQuarantined && p.Violation == "" {
		p.Violation = errMsg
	}
	if withSpec {
		spec := j.Spec
		p.Spec = &spec
	}
	return p
}

// Handler mounts the job API.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/estimate", m.handleEstimate)
	mux.HandleFunc("GET /v1/jobs", m.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", m.handleGet)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", m.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", m.handleResume)
	// Colon verbs: ServeMux wildcards span whole segments, so
	// "/v1/jobs/job-000001:resume" arrives here with id "job-000001:resume".
	mux.HandleFunc("POST /v1/jobs/{id}", m.handleColonVerb)
	return mux
}

func (m *Manager) handleColonVerb(w http.ResponseWriter, r *http.Request) {
	id, verb, ok := strings.Cut(r.PathValue("id"), ":")
	if !ok {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: "POST /v1/jobs/{id}:cancel or {id}:resume"})
		return
	}
	switch verb {
	case "cancel":
		m.cancelJob(w, id)
	case "resume":
		m.resumeJob(w, id)
	default:
		writeJSON(w, http.StatusNotFound, errorPayload{Error: "unknown verb " + verb})
	}
}

func (m *Manager) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: "bad request body: " + err.Error()})
		return
	}
	job, err := m.Start(req.Spec, req.Config())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, jobPayload(job, true))
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := m.Jobs()
	out := make([]JobPayload, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, jobPayload(j, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, jobPayload(job, true))
}

func (m *Manager) handleCancel(w http.ResponseWriter, r *http.Request) {
	m.cancelJob(w, r.PathValue("id"))
}

func (m *Manager) cancelJob(w http.ResponseWriter, id string) {
	job, ok := m.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorPayload{Error: "no such job"})
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, jobPayload(job, false))
}

func (m *Manager) handleResume(w http.ResponseWriter, r *http.Request) {
	m.resumeJob(w, r.PathValue("id"))
}

func (m *Manager) resumeJob(w http.ResponseWriter, id string) {
	job, err := m.Resume(id)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, jobPayload(job, true))
	case errors.Is(err, ErrNoCheckpoint):
		writeJSON(w, http.StatusNotFound, errorPayload{Error: err.Error()})
	case errors.Is(err, ErrJobRunning):
		writeJSON(w, http.StatusConflict, errorPayload{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, errorPayload{Error: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

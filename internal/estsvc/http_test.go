package estsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdunbiased/internal/datagen"
)

func startAPI(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewManager(autoTable(t, 3000, 20)).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, JobPayload) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p JobPayload
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
	}
	return resp, p
}

func getJob(t *testing.T, srv *httptest.Server, id string) JobPayload {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job: %s", resp.Status)
	}
	var p JobPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	return p
}

func waitDone(t *testing.T, srv *httptest.Server, id string, want JobState) JobPayload {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		p := getJob(t, srv, id)
		if p.State != string(JobRunning) {
			if p.State != string(want) {
				t.Fatalf("job ended %s (err=%q), want %s", p.State, p.Error, want)
			}
			return p
		}
		select {
		case <-deadline:
			t.Fatal("job did not finish")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestJobAPIEndToEnd(t *testing.T) {
	srv := startAPI(t)
	resp, created := postJSON(t, srv.URL+"/v1/estimate",
		`{"algo":"hd","r":3,"dub":16,"sum":["`+datagen.AutoPriceMeasure+`"],"workers":4,"seed":9,"max_passes":40}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/estimate: %s", resp.Status)
	}
	if created.ID == "" || resp.Header.Get("Location") != "/v1/jobs/"+created.ID {
		t.Fatalf("bad creation payload: %+v", created)
	}

	final := waitDone(t, srv, created.ID, JobDone)
	snap := final.Snapshot
	if !snap.Done || snap.Reason != string(StopPasses) || snap.Passes != 40 {
		t.Errorf("final snapshot %+v", snap)
	}
	if len(snap.Measures) != 2 || snap.Measures[0].Label != "COUNT" || snap.Measures[1].Label != "SUM(price)" {
		t.Fatalf("measures = %+v", snap.Measures)
	}
	if snap.Measures[0].Mean <= 0 || snap.Cost <= 0 {
		t.Errorf("degenerate estimate: %+v", snap)
	}
	if final.Spec == nil || final.Spec.R != 3 {
		t.Errorf("spec not echoed: %+v", final.Spec)
	}

	// Listing includes the job.
	lresp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []JobPayload
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != created.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestJobAPICancel(t *testing.T) {
	srv := startAPI(t)
	// Unreachable target: only cancellation can end this job.
	resp, created := postJSON(t, srv.URL+"/v1/estimate",
		`{"workers":2,"seed":1,"target_rse":1e-12,"max_passes":1000000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %s", resp.Status)
	}
	cresp, _ := postJSON(t, srv.URL+"/v1/jobs/"+created.ID+"/cancel", "")
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s", cresp.Status)
	}
	final := waitDone(t, srv, created.ID, JobCancelled)
	if final.Snapshot.Reason != string(StopCancelled) {
		t.Errorf("cancelled job snapshot reason = %q", final.Snapshot.Reason)
	}
}

func TestJobAPIErrors(t *testing.T) {
	srv := startAPI(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"bad json", `{`},
		{"unknown field", `{"bogus":1}`},
		{"unknown algo", `{"algo":"nope"}`},
		{"unknown attr", `{"where":{"nope":1}}`},
	} {
		resp, _ := postJSON(t, srv.URL+"/v1/estimate", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", tc.name, resp.Status)
		}
	}
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/cancel"} {
		var resp *http.Response
		var err error
		if strings.HasSuffix(path, "cancel") {
			resp, err = http.Post(srv.URL+path, "application/json", nil)
		} else {
			resp, err = http.Get(srv.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %s, want 404", path, resp.Status)
		}
	}
}

// TestManagerDefaultBudget: a request with no stopping rule gets the
// default cost budget rather than running to the pass hard cap.
func TestManagerDefaultBudget(t *testing.T) {
	m := NewManager(autoTable(t, 3000, 20))
	job, err := m.Start(Spec{}, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if job.Config.MaxCost != 1000 {
		t.Fatalf("default MaxCost = %d, want 1000", job.Config.MaxCost)
	}
	deadline := time.After(10 * time.Second)
	for {
		if state, _ := job.State(); state == JobDone {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job did not finish")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if snap := job.Snapshot(); snap.Reason != StopBudget {
		t.Errorf("reason = %q, want budget", snap.Reason)
	}
}

package estsvc

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"hdunbiased/internal/obs"
)

// scrape renders reg's Prometheus exposition as a string.
func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// waitSettled blocks until the job's launch goroutine has fully finished,
// including its final store writes.
func waitSettled(t *testing.T, job *Job) {
	t.Helper()
	select {
	case <-job.done:
	case <-time.After(10 * time.Second):
		state, _ := job.State()
		t.Fatalf("job %s never settled (state %s)", job.ID, state)
	}
}

// TestServiceMetricsMove is the satellite e2e: run a real job through a
// durable Manager and assert the service-level series actually move — static
// round/checkpoint counters tick, and the PublishMetrics collector emits the
// per-job lifecycle and progress series on scrape.
func TestServiceMetricsMove(t *testing.T) {
	rounds0, cps0 := obsRounds.Value(), obsCheckpoints.Value()

	reg := obs.NewRegistry()
	mgr := NewManager(autoTable(t, 3000, 20), WithStore(NewMemStore()), WithCheckpointEvery(1))
	mgr.PublishMetrics(reg)

	job, err := mgr.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 7, MaxPasses: 40})
	if err != nil {
		t.Fatal(err)
	}
	waitSettled(t, job)
	if state, msg := job.State(); state != JobDone {
		t.Fatalf("job state %s (%s), want done", state, msg)
	}

	if obsRounds.Value() <= rounds0 {
		t.Error("estsvc_rounds_total did not move across a full job")
	}
	if obsCheckpoints.Value() <= cps0 {
		t.Error("estsvc_checkpoints_total did not move with CheckpointEvery=1")
	}

	text := scrape(t, reg)
	for _, want := range []string{
		`estsvc_jobs{state="done"} 1`,
		`estsvc_jobs{state="running"} 0`,
		`estsvc_job_passes{job="` + job.ID + `"} 40`,
		`estsvc_job_cost{job="` + job.ID + `"}`,
		`estsvc_job_rse{job="` + job.ID + `",measure=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

// TestManagerDrain: graceful shutdown cancels running jobs and waits for
// their launch goroutines to finish the final store writes — so the stored
// checkpoint survives and the job can be resumed by the next process.
func TestManagerDrain(t *testing.T) {
	store := NewMemStore()
	mgr := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	job, err := mgr.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 3, TargetRSE: 1e-9, MinPasses: 8, MaxPasses: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	// Let it checkpoint at least once so there is something to keep.
	deadline := time.After(10 * time.Second)
	for {
		if ids, err := store.List(); err == nil && len(ids) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never checkpointed")
		case <-time.After(2 * time.Millisecond):
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if state, _ := job.State(); state != JobCancelled {
		t.Fatalf("drained job state %s, want cancelled", state)
	}
	// Drain returned after markStored: the envelope records the deliberate
	// stop and the checkpoint is still there for an explicit Resume.
	if ids, err := store.List(); err != nil || len(ids) != 1 {
		t.Fatalf("store after drain: ids=%v err=%v, want the checkpoint kept", ids, err)
	}
	// Draining an already-settled manager is a no-op.
	if err := mgr.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestFlightTimeline: a job's flight recorder holds its lifecycle in order —
// start, rounds, timed checkpoints, terminal state — and a resume appends to
// the SAME ring, so the kill/resume seam is visible in one timeline.
func TestFlightTimeline(t *testing.T) {
	store := NewMemStore()
	mgr := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	job, err := mgr.Start(Spec{Algo: "hd", R: 3, DUB: 16},
		Config{Workers: 2, Seed: 5, TargetRSE: 1e-9, MinPasses: 8, MaxPasses: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		if ids, err := store.List(); err == nil && len(ids) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never checkpointed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	job.Cancel()
	waitSettled(t, job)

	flight, ok := mgr.Flights().Get(job.ID)
	if !ok {
		t.Fatalf("no flight recorder for %s", job.ID)
	}
	seen := make(map[string]int)
	for _, ev := range flight.Events() {
		seen[ev.Name]++
		if ev.Name == "checkpoint" && ev.Dur <= 0 {
			t.Error("checkpoint event recorded without a duration")
		}
	}
	for _, want := range []string{"job.start", "round", "checkpoint", "job.cancelled"} {
		if seen[want] == 0 {
			t.Errorf("flight ring missing %q events (have %v)", want, seen)
		}
	}

	// Resume keeps appending to the original ring and ticks the counter.
	resumes0 := obsResumes.Value()
	job2, err := mgr.Resume(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if obsResumes.Value() != resumes0+1 {
		t.Errorf("estsvc_resumes_total moved by %d, want 1", obsResumes.Value()-resumes0)
	}
	flight2, _ := mgr.Flights().Get(job.ID)
	if flight2 != flight {
		t.Error("resumed job got a fresh flight ring; want the original timeline")
	}
	job2.Cancel()
	waitSettled(t, job2)
	found := false
	for _, ev := range flight.Events() {
		if ev.Name == "job.resume" {
			found = true
			if ev.N <= 0 {
				t.Error("job.resume event should carry the checkpointed pass count")
			}
		}
	}
	if !found {
		t.Error("flight ring has no job.resume event after Resume")
	}
}

package estsvc

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hdunbiased/internal/datagen"
	"hdunbiased/internal/hdb"
)

// autoTable builds a fresh small Auto workload — fresh per run so sessions
// never share warm caches across test runs.
func autoTable(t testing.TB, m, k int) *hdb.Table {
	t.Helper()
	d, err := datagen.Auto(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.Table(k)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func hdFactory(t testing.TB, tbl *hdb.Table) Factory {
	t.Helper()
	factory, _, err := Spec{Algo: "hd", R: 3, DUB: 16}.NewFactory(tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return factory
}

func runSession(t testing.TB, tbl *hdb.Table, cfg Config) Snapshot {
	t.Helper()
	sess, err := New(tbl, hdFactory(t, tbl), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// The determinism golden pins the W=4 merged estimates bit for bit — the
// session-level extension of internal/core's fixed-seed equivalence suite.
// Cost, cache hits and elapsed time are deliberately NOT pinned: which
// worker pays for a shared cache miss is scheduling-dependent; the
// estimates must not be. Regenerate with:
//
//	ESTSVC_UPDATE_GOLDEN=1 go test ./internal/estsvc -run TestSessionDeterminism
const goldenPath = "testdata/determinism.json"

type determinismGolden struct {
	MeanBits   []uint64 `json:"mean_bits"`
	StdErrBits []uint64 `json:"stderr_bits"`
	Passes     int64    `json:"passes"`
	Reason     string   `json:"reason"`
}

func goldenOf(snap Snapshot) determinismGolden {
	g := determinismGolden{Passes: snap.Passes, Reason: string(snap.Reason)}
	for _, m := range snap.Measures {
		g.MeanBits = append(g.MeanBits, math.Float64bits(m.Mean))
		g.StdErrBits = append(g.StdErrBits, math.Float64bits(m.StdErr))
	}
	return g
}

// determinismConfig exercises the adaptive (round-based) path: a target-RSE
// rule that actually decides when to stop, backed by a pass cap.
func determinismConfig() Config {
	return Config{Workers: 4, Seed: 7, TargetRSE: 0.10, MinPasses: 16, MaxPasses: 4000}
}

func TestSessionDeterminism(t *testing.T) {
	run := func() determinismGolden {
		return goldenOf(runSession(t, autoTable(t, 3000, 20), determinismConfig()))
	}
	got := run()
	if len(got.MeanBits) != 1 {
		t.Fatalf("measures = %d, want 1", len(got.MeanBits))
	}

	if os.Getenv("ESTSVC_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s: %+v", goldenPath, got)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with ESTSVC_UPDATE_GOLDEN=1): %v", err)
	}
	var want determinismGolden
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}

	check := func(label string, g determinismGolden) {
		if g.Passes != want.Passes || g.Reason != want.Reason {
			t.Errorf("%s: passes=%d reason=%q, golden passes=%d reason=%q",
				label, g.Passes, g.Reason, want.Passes, want.Reason)
		}
		for i := range want.MeanBits {
			if i >= len(g.MeanBits) || g.MeanBits[i] != want.MeanBits[i] {
				t.Errorf("%s: mean[%d] bits diverge from golden", label, i)
			}
			if i >= len(g.StdErrBits) || g.StdErrBits[i] != want.StdErrBits[i] {
				t.Errorf("%s: stderr[%d] bits diverge from golden", label, i)
			}
		}
	}
	check("run1", got)
	// A second run under a different GOMAXPROCS forces different goroutine
	// interleavings; merged estimates must not notice.
	prev := runtime.GOMAXPROCS(2)
	check("run2/GOMAXPROCS=2", run())
	runtime.GOMAXPROCS(prev)
}

// TestParallelUnbiasedness checks the parallel mean lands where the
// sequential mean does: both are means of i.i.d. unbiased per-pass
// estimates of the true size, so each must sit within a few standard
// errors of truth (seeds are fixed; this is a deterministic assertion).
func TestParallelUnbiasedness(t *testing.T) {
	truth := float64(autoTable(t, 3000, 20).Size())
	const passes = 240
	seq := runSession(t, autoTable(t, 3000, 20), Config{Workers: 1, Seed: 11, MaxPasses: passes})
	par := runSession(t, autoTable(t, 3000, 20), Config{Workers: 4, Seed: 11, MaxPasses: passes})
	if seq.Passes != passes || par.Passes != passes {
		t.Fatalf("passes: seq=%d par=%d, want %d", seq.Passes, par.Passes, passes)
	}
	for name, snap := range map[string]Snapshot{"sequential": seq, "parallel": par} {
		m := snap.Measures[0]
		if dev := math.Abs(m.Mean - truth); dev > 5*m.StdErr {
			t.Errorf("%s mean %.1f is %.1f stderr away from truth %.0f (stderr %.1f)",
				name, m.Mean, dev/m.StdErr, truth, m.StdErr)
		}
	}
	// And against each other, with both uncertainties in play.
	s, p := seq.Measures[0], par.Measures[0]
	if dev := math.Abs(s.Mean - p.Mean); dev > 5*math.Hypot(s.StdErr, p.StdErr) {
		t.Errorf("sequential %.1f vs parallel %.1f diverge beyond combined CI", s.Mean, p.Mean)
	}
}

// TestWorkersOneMatchesSequentialSeed: worker 0's substream is the seed
// itself, so a 1-worker session reproduces a sequential estimator's passes.
func TestWorkersOneMatchesSequentialSeed(t *testing.T) {
	tbl := autoTable(t, 2000, 20)
	factory, _, err := Spec{Algo: "hd", R: 3, DUB: 16}.NewFactory(tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	est, err := factory(hdb.NewSession(autoTable(t, 2000, 20)), 7)
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	const passes = 10
	for i := 0; i < passes; i++ {
		res, err := est.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		mean += res.Values[0] / passes
	}
	snap := runSession(t, tbl, Config{Workers: 1, Seed: 7, MaxPasses: passes})
	if math.Abs(snap.Measures[0].Mean-mean) > 1e-9*math.Abs(mean) {
		t.Errorf("1-worker session mean %.6f != sequential mean %.6f", snap.Measures[0].Mean, mean)
	}
}

func TestStopMaxCost(t *testing.T) {
	snap := runSession(t, autoTable(t, 3000, 20), Config{Workers: 4, Seed: 3, MaxCost: 300})
	if snap.Reason != StopBudget {
		t.Fatalf("reason = %q, want budget", snap.Reason)
	}
	if snap.Cost < 300 {
		t.Errorf("stopped at cost %d before the 300 budget", snap.Cost)
	}
	if snap.Passes == 0 {
		t.Error("no passes completed")
	}
}

func TestStopTargetRSE(t *testing.T) {
	cfg := Config{Workers: 4, Seed: 5, TargetRSE: 0.15, MinPasses: 8, MaxPasses: 8000}
	snap := runSession(t, autoTable(t, 3000, 20), cfg)
	if snap.Reason != StopTargetRSE {
		t.Fatalf("reason = %q, want target-rse (rse=%v passes=%d)", snap.Reason, snap.Measures[0].RSE, snap.Passes)
	}
	if snap.Measures[0].RSE > cfg.TargetRSE {
		t.Errorf("stopped with RSE %.3f above target %.3f", snap.Measures[0].RSE, cfg.TargetRSE)
	}
	if snap.Passes < int64(cfg.MinPasses) {
		t.Errorf("stopped after %d passes, min is %d", snap.Passes, cfg.MinPasses)
	}
}

func TestStopDeadline(t *testing.T) {
	snap := runSession(t, autoTable(t, 3000, 20), Config{Workers: 2, Seed: 1, MaxDuration: time.Nanosecond, TargetRSE: 1e-12})
	if snap.Reason != StopDeadline {
		t.Errorf("reason = %q, want deadline", snap.Reason)
	}
	if !snap.Done {
		t.Error("snapshot not done")
	}
}

func TestCancellation(t *testing.T) {
	tbl := autoTable(t, 5000, 20)
	sess, err := New(tbl, hdFactory(t, tbl), Config{Workers: 2, Seed: 1, TargetRSE: 1e-12, MinPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var snap Snapshot
	var runErr error
	go func() {
		defer close(done)
		snap, runErr = sess.Run(ctx)
	}()
	// Let it make some progress, then pull the plug.
	deadline := time.After(5 * time.Second)
	for sess.Snapshot().Passes < 4 {
		select {
		case <-deadline:
			t.Fatal("session made no progress")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	<-done
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("Run error = %v, want context.Canceled", runErr)
	}
	if snap.Reason != StopCancelled {
		t.Errorf("reason = %q, want cancelled", snap.Reason)
	}
	if snap.Passes == 0 {
		t.Error("partial snapshot lost its passes")
	}
}

func TestExactBase(t *testing.T) {
	// k >= m: the base query answers exactly and the session must say so.
	tbl := autoTable(t, 40, 100)
	snap := runSession(t, tbl, Config{Workers: 4, Seed: 1, MaxPasses: 100})
	if !snap.Exact || snap.Reason != StopExact {
		t.Fatalf("exact=%v reason=%q, want exact stop", snap.Exact, snap.Reason)
	}
	if snap.Measures[0].Mean != float64(tbl.Size()) {
		t.Errorf("exact mean %.1f != size %d", snap.Measures[0].Mean, tbl.Size())
	}
	if snap.Passes != 4 {
		t.Errorf("exact session ran %d passes, want one per worker (4)", snap.Passes)
	}
}

func TestConfigValidation(t *testing.T) {
	tbl := autoTable(t, 100, 10)
	if _, err := New(tbl, hdFactory(t, tbl), Config{}); err == nil {
		t.Error("no stopping rule accepted")
	}
	if _, err := New(tbl, hdFactory(t, tbl), Config{MaxPasses: -1}); err == nil {
		t.Error("negative rule accepted")
	}
	if _, err := New(nil, hdFactory(t, tbl), Config{MaxPasses: 1}); err == nil {
		t.Error("nil backend accepted")
	}
	sess, err := New(tbl, hdFactory(t, tbl), Config{MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Workers() <= 0 {
		t.Error("workers not defaulted")
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err == nil {
		t.Error("second Run accepted")
	}
}

func TestSpecErrors(t *testing.T) {
	schema := autoTable(t, 100, 10).Schema()
	if _, _, err := (Spec{Algo: "nope"}).NewFactory(schema); err == nil {
		t.Error("unknown algo accepted")
	}
	if _, _, err := (Spec{Where: map[string]int{"nope": 0}}).NewFactory(schema); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, _, err := (Spec{Where: map[string]int{"make": 1 << 14}}).NewFactory(schema); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if _, _, err := (Spec{Sum: []string{"nope"}}).NewFactory(schema); err == nil {
		t.Error("unknown measure accepted")
	}
	_, labels, err := (Spec{Sum: []string{datagen.AutoPriceMeasure}, Where: map[string]int{"make": 0}}).NewFactory(schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != "COUNT" || labels[1] != "SUM(price)" {
		t.Errorf("labels = %v", labels)
	}
}

package estsvc

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestFileStoreSweepsStaleTmp: NewFileStore removes *.tmp leftovers from
// crashed atomic renames — but only old ones, so it cannot race another live
// replica's in-flight Put when the directory is shared in fleet mode.
func TestFileStoreSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()

	stale := filepath.Join(dir, "job-000001.json.tmp")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tmpSweepAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "job-000002.json.tmp")
	if err := os.WriteFile(fresh, []byte("in-flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "job-000003.json")
	if err := os.WriteFile(keep, []byte(`{"id":"job-000003"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale tmp survived the sweep: err = %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh tmp swept (could be another replica's in-flight rename): %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("real checkpoint touched by the sweep: %v", err)
	}
	ids, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "job-000003" {
		t.Fatalf("List = %v, want [job-000003]", ids)
	}
}

package estsvc

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"hdunbiased/internal/obs"
)

// Service-level observability. Static counters (rounds, checkpoints,
// resumes) are package-level handles resolved once against obs.Default;
// per-job series — whose label sets come and go with jobs — are emitted by a
// scrape-time collector (PublishMetrics) so they can never leak registry
// entries, and per-job lifecycle history lives in flight recorders
// (Manager.Flights, served at /debug/flight).
var (
	obsRounds = obs.Default.Counter("estsvc_rounds_total",
		"barrier-synchronised session rounds executed (one pass per worker each)")
	obsCheckpoints = obs.Default.Counter("estsvc_checkpoints_total",
		"session checkpoints captured and persisted")
	obsCheckpointSec = obs.Default.Histogram("estsvc_checkpoint_seconds",
		"checkpoint capture + sink latency", obs.LatencyBuckets())
	obsResumes = obs.Default.Counter("estsvc_resumes_total",
		"jobs rebuilt from a stored checkpoint")
	obsDegradations = obs.Default.Counter("estsvc_degradations_total",
		"jobs demoted to the Boolean-check variant after an invariant violation")
	obsQuarantines = obs.Default.Counter("estsvc_quarantines_total",
		"jobs quarantined after violating invariants while already degraded")
)

// checkpointNow captures one checkpoint and hands it to the sink, timing the
// whole durability step and recording it on the job's flight recorder.
func (s *Session) checkpointNow(round int) error {
	t0 := time.Now()
	cp, err := s.Checkpoint()
	if err == nil {
		err = s.cfg.CheckpointSink(cp)
	}
	d := time.Since(t0)
	obsCheckpoints.Inc()
	obsCheckpointSec.Observe(d.Seconds())
	if s.cfg.Flight != nil {
		s.cfg.Flight.RecordDur("checkpoint", int64(round), d)
	}
	return err
}

// noteRound records one completed round on the static counter and the job's
// flight recorder. Runs at the round barrier — worker-idle, cold path.
func (s *Session) noteRound(round int) {
	obsRounds.Inc()
	if s.cfg.Flight != nil {
		s.cfg.Flight.Record("round", int64(round))
	}
}

// PublishMetrics registers a scrape-time collector exposing the Manager's
// jobs in reg (obs.Default when nil): lifecycle gauges by state, and per-job
// progress series — passes, backend cost, memo hits and per-measure RSE
// trajectory. Collector-based on purpose: jobs come and go, and a registered
// series per job would leak; a collector emits exactly the jobs alive at
// scrape time.
func (m *Manager) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	reg.Collect(func(e *obs.Emitter) {
		counts := make(map[JobState]int, 4)
		for _, j := range m.Jobs() {
			state, _ := j.State()
			counts[state]++
			snap := j.Snapshot()
			e.Emit("estsvc_job_passes", "estimation passes completed, by job",
				float64(snap.Passes), "job", j.ID)
			e.Emit("estsvc_job_cost", "backend queries spent, by job",
				float64(snap.Cost), "job", j.ID)
			e.Emit("estsvc_job_cache_hits", "memo hits, by job",
				float64(snap.CacheHits), "job", j.ID)
			for mi, ms := range snap.Measures {
				label := "m" + strconv.Itoa(mi)
				if mi < len(j.Labels) && j.Labels[mi] != "" {
					label = j.Labels[mi]
				}
				e.Emit("estsvc_job_rse", "relative standard error trajectory, by job and measure",
					ms.RSE, "job", j.ID, "measure", label)
			}
		}
		for _, st := range []JobState{JobRunning, JobDegraded, JobDone, JobFailed, JobCancelled, JobQuarantined} {
			e.Emit("estsvc_jobs", "tracked jobs by lifecycle state",
				float64(counts[st]), "state", string(st))
		}
	})
}

// Flights returns the per-job flight recorders — one bounded event ring per
// job ID, recording starts, resumes, rounds, checkpoints and terminal
// states. Serve with obs.NewMux or FlightSet.Handler.
func (m *Manager) Flights() *obs.FlightSet { return m.flights }

// Drain gracefully stops the Manager's running jobs: each is cancelled
// (cancellation checkpoints nothing new but the launch goroutine persists
// the terminal envelope, keeping the job resumable), then Drain waits until
// every launch goroutine has finished its final store writes or ctx expires.
// Call after the HTTP listener has stopped accepting work.
func (m *Manager) Drain(ctx context.Context) error {
	jobs := m.Jobs()
	for _, j := range jobs {
		if state, _ := j.State(); state.Active() {
			j.Cancel()
		}
	}
	for _, j := range jobs {
		if j.done == nil {
			continue // job predates launch (never started); nothing to wait on
		}
		select {
		case <-j.done:
		case <-ctx.Done():
			return fmt.Errorf("estsvc: drain interrupted with %s still settling: %w", j.ID, ctx.Err())
		}
	}
	return nil
}

package estsvc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// JobStore persists job checkpoints by job ID. Put must be atomic at the
// granularity of one ID: a reader (Get) observes either the previous or the
// new envelope, never a torn write — this is what lets a killed service
// resume from whatever the store holds. Implementations must be safe for
// concurrent use.
type JobStore interface {
	Put(id string, envelope []byte) error
	// Get returns the stored envelope, or ErrNoCheckpoint when the id has
	// none.
	Get(id string) ([]byte, error)
	// List returns the stored job IDs in lexical order.
	List() ([]string, error)
	// Delete removes the id's envelope; deleting an absent id is a no-op.
	Delete(id string) error
}

// ErrNoCheckpoint is returned by JobStore.Get for an unknown job ID.
var ErrNoCheckpoint = fmt.Errorf("estsvc: no checkpoint stored for this job")

// MemStore is an in-memory JobStore — the default for a Manager without
// durability, and the fixture for tests.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put implements JobStore.
func (s *MemStore) Put(id string, envelope []byte) error {
	if err := checkJobID(id); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[id] = append([]byte(nil), envelope...)
	s.mu.Unlock()
	return nil
}

// Get implements JobStore.
func (s *MemStore) Get(id string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.m[id]
	if !ok {
		return nil, ErrNoCheckpoint
	}
	return append([]byte(nil), blob...), nil
}

// List implements JobStore.
func (s *MemStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.m))
	for id := range s.m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete implements JobStore.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
	return nil
}

// FileStore persists envelopes as one JSON file per job under a directory,
// with the atomic-rename discipline: Put writes id.json.tmp and renames it
// over id.json, so a crash mid-write leaves the previous checkpoint intact
// and a reader never sees a torn file.
type FileStore struct {
	dir string
	mu  sync.Mutex
}

// tmpSweepAge is how old a *.tmp leftover must be before NewFileStore
// removes it. A crashed Put strands its temp file forever (List skips them,
// but a long-lived store directory accumulates one per crash); the age gate
// keeps the sweep from racing another live replica's in-flight rename when
// several processes share the directory in fleet mode.
const tmpSweepAge = time.Hour

// NewFileStore opens (creating if needed) a directory-backed store, sweeping
// stale *.tmp leftovers from crashed atomic renames.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("estsvc: job store: %w", err)
	}
	s := &FileStore{dir: dir}
	s.sweepTmp(time.Now())
	return s, nil
}

// sweepTmp removes *.tmp files older than tmpSweepAge.
func (s *FileStore) sweepTmp(now time.Time) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || now.Sub(info.ModTime()) < tmpSweepAge {
			continue
		}
		os.Remove(filepath.Join(s.dir, e.Name()))
	}
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) path(id string) string { return filepath.Join(s.dir, id+".json") }

// Put implements JobStore with write-to-temp + rename.
func (s *FileStore) Put(id string, envelope []byte) error {
	if err := checkJobID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp := s.path(id) + ".tmp"
	if err := os.WriteFile(tmp, envelope, 0o644); err != nil {
		return fmt.Errorf("estsvc: job store: %w", err)
	}
	if err := os.Rename(tmp, s.path(id)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("estsvc: job store: %w", err)
	}
	return nil
}

// Get implements JobStore.
func (s *FileStore) Get(id string) ([]byte, error) {
	if err := checkJobID(id); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, err := os.ReadFile(s.path(id))
	if os.IsNotExist(err) {
		return nil, ErrNoCheckpoint
	}
	if err != nil {
		return nil, fmt.Errorf("estsvc: job store: %w", err)
	}
	return blob, nil
}

// List implements JobStore.
func (s *FileStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("estsvc: job store: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue // .tmp leftovers and strangers are not checkpoints
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete implements JobStore.
func (s *FileStore) Delete(id string) error {
	if err := checkJobID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("estsvc: job store: %w", err)
	}
	return nil
}

// checkJobID guards file-backed stores against path-traversal IDs; Manager
// IDs ("job-000042") always pass.
func checkJobID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\:") || strings.Contains(id, "..") {
		return fmt.Errorf("estsvc: invalid job id %q", id)
	}
	return nil
}

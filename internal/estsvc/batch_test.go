package estsvc

import (
	"context"
	"math"
	"testing"

	"hdunbiased/internal/hdb"
)

// The batched-session equivalence suite: Config.Batch swaps the execution
// engine (free-running workers over a sharded memo -> lockstep cohort with
// probe CSE and batched sibling evaluation) and must change NOTHING an
// estimate depends on. These tests enforce bit-identity against the
// unbatched session — which is itself pinned against committed goldens by
// TestSessionDeterminism — so the batch engine is transitively golden-
// pinned as a tier-1 test.

// batchOf returns cfg with Batch set.
func batchOf(cfg Config) Config {
	cfg.Batch = true
	return cfg
}

func TestBatchSessionMatchesUnbatched(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		// Adaptive rounds: the TargetRSE rule decides the pass count, so
		// bit-identity covers rule evaluation over merged moments too.
		{"adaptive-w4", determinismConfig()},
		// Static share partition, several workers with uneven shares.
		{"static-w4", Config{Workers: 4, Seed: 11, MaxPasses: 242}},
		// One lane: the cohort degenerates to a serial run.
		{"static-w1", Config{Workers: 1, Seed: 5, MaxPasses: 60}},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			plain := runSession(t, autoTable(t, 3000, 20), tc.cfg)
			batched := runSession(t, autoTable(t, 3000, 20), batchOf(tc.cfg))
			p, b := goldenOf(plain), goldenOf(batched)
			if b.Passes != p.Passes || b.Reason != p.Reason {
				t.Fatalf("batched passes=%d reason=%q, unbatched passes=%d reason=%q",
					b.Passes, b.Reason, p.Passes, p.Reason)
			}
			for i := range p.MeanBits {
				if b.MeanBits[i] != p.MeanBits[i] {
					t.Errorf("mean[%d]: batched %v != unbatched %v",
						i, math.Float64frombits(b.MeanBits[i]), math.Float64frombits(p.MeanBits[i]))
				}
				if b.StdErrBits[i] != p.StdErrBits[i] {
					t.Errorf("stderr[%d] bits diverge", i)
				}
			}
			// Query-spend parity: both modes answer the same per-worker probe
			// streams, so probes = cost + hits must balance exactly. The
			// charge/hit split gets 1% of upward slack: which probe of a
			// near-duplicate pair pays depends on fill order (a count-only
			// probe warms the trie but not the full memo), and the two
			// schedules order fills differently. Downward drift is fine —
			// that is wave dedup removing duplicate issuance.
			if diff := batched.Cost - plain.Cost; diff > plain.Cost/100 {
				t.Errorf("batched cost %d vs unbatched %d — batching must not add spend", batched.Cost, plain.Cost)
			}
			if bt, pt := batched.Cost+batched.CacheHits, plain.Cost+plain.CacheHits; bt != pt {
				t.Errorf("total probes diverge: batched %d (cost %d + hits %d) vs unbatched %d",
					bt, batched.Cost, batched.CacheHits, pt)
			}
		})
	}
}

// TestBatchFlatBackend: Batch over a backend with no cursor support (the
// webform shape) falls back to flat per-lane queries with wave-level
// dedup and still matches the unbatched session bit for bit.
func TestBatchFlatBackend(t *testing.T) {
	type flatOnly struct{ hdb.Interface }
	cfg := Config{Workers: 4, Seed: 9, MaxPasses: 120}
	run := func(cfg Config) Snapshot {
		tbl := autoTable(t, 2000, 20)
		sess, err := New(flatOnly{tbl}, hdFactory(t, tbl), cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	plain := run(cfg)
	batched := run(batchOf(cfg))
	p, b := goldenOf(plain), goldenOf(batched)
	if b.Passes != p.Passes {
		t.Fatalf("passes: batched %d, unbatched %d", b.Passes, p.Passes)
	}
	for i := range p.MeanBits {
		if b.MeanBits[i] != p.MeanBits[i] || b.StdErrBits[i] != p.StdErrBits[i] {
			t.Errorf("measure %d diverges over a cursorless backend", i)
		}
	}
}

// TestBatchExactSession: a base query the backend answers exactly stops a
// batched session with StopExact, same as unbatched.
func TestBatchExactSession(t *testing.T) {
	tbl := autoTable(t, 15, 100) // k > size: the base query underflows
	snap := runSession(t, tbl, batchOf(Config{Workers: 3, Seed: 1, MaxPasses: 50}))
	if !snap.Exact || snap.Reason != StopExact {
		t.Fatalf("exact=%v reason=%q, want exact StopExact", snap.Exact, snap.Reason)
	}
	if snap.Measures[0].Mean != float64(tbl.Size()) {
		t.Errorf("exact mean %v, want %d", snap.Measures[0].Mean, tbl.Size())
	}
}

// TestBatchCancellation: cancelling a batched session's context stops it
// with the context error and a partial (still unbiased) merge.
func TestBatchCancellation(t *testing.T) {
	sess, err := New(autoTable(t, 3000, 20), hdFactory(t, autoTable(t, 3000, 20)),
		batchOf(Config{Workers: 2, Seed: 1, TargetRSE: 1e-12, MaxPasses: 1 << 19}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap, err := sess.Run(ctx)
	if err == nil {
		t.Fatal("cancelled batched session returned nil error")
	}
	if snap.Reason != StopCancelled {
		t.Errorf("reason = %q, want %q", snap.Reason, StopCancelled)
	}
}

// TestBatchResumeDeterminism: the durable path in batch mode — checkpoints
// captured at cohort round barriers, killed at several boundaries, resumed
// through the JSON process boundary with Batch preserved in the envelope —
// reproduces the uninterrupted batched (== unbatched) run bit for bit.
func TestBatchResumeDeterminism(t *testing.T) {
	spec := Spec{Algo: "hd", R: 3, DUB: 16}
	cfg := batchOf(Config{Workers: 4, Seed: 7, TargetRSE: 0.10, MinPasses: 16, MaxPasses: 4000})

	baseline := goldenOf(runSession(t, autoTable(t, 3000, 20), cfg))

	var cps []*SessionCheckpoint
	durableCfg := cfg
	durableCfg.CheckpointEvery = 1
	durableCfg.CheckpointSink = func(cp *SessionCheckpoint) error {
		cps = append(cps, sessionThroughJSON(t, cp))
		return nil
	}
	durable := goldenOf(runSession(t, autoTable(t, 3000, 20), durableCfg))
	if durable.Passes != baseline.Passes {
		t.Fatalf("checkpointing changed the batched pass count: %d vs %d", durable.Passes, baseline.Passes)
	}
	if len(cps) < 2 {
		t.Fatalf("only %d checkpoints captured", len(cps))
	}
	if !cps[0].Config.Batch {
		t.Fatal("checkpoint envelope lost Config.Batch")
	}

	for _, idx := range []int{0, len(cps) / 2, len(cps) - 1} {
		sess, _, err := Resume(autoTable(t, 3000, 20), spec, cps[idx], func(*SessionCheckpoint) error { return nil })
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", idx, err)
		}
		if sess.cohort == nil {
			t.Fatal("resumed session is not batched despite envelope Batch flag")
		}
		snap, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("resumed run from checkpoint %d: %v", idx, err)
		}
		got := goldenOf(snap)
		if got.Passes != baseline.Passes || got.Reason != baseline.Reason {
			t.Errorf("checkpoint %d: resumed passes=%d reason=%q, want passes=%d reason=%q",
				idx, got.Passes, got.Reason, baseline.Passes, baseline.Reason)
		}
		for i := range baseline.MeanBits {
			if got.MeanBits[i] != baseline.MeanBits[i] || got.StdErrBits[i] != baseline.StdErrBits[i] {
				t.Errorf("checkpoint %d: resumed batched estimate diverges (measure %d)", idx, i)
			}
		}
	}
}

package estsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sessionThroughJSON crosses the process boundary: serialize the checkpoint
// and parse it back, the exact path a restarted service takes.
func sessionThroughJSON(t *testing.T, cp *SessionCheckpoint) *SessionCheckpoint {
	t.Helper()
	blob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var back SessionCheckpoint
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	return &back
}

// TestSessionResumeDeterminism is the session-level half of the resume
// guarantee: a TargetRSE session that checkpoints every round, is killed at
// some round boundary, and resumes in a "fresh process" (JSON round trip,
// rebuilt backend table, cold shared cache) must stop after the same total
// passes with bit-identical merged estimates.
func TestSessionResumeDeterminism(t *testing.T) {
	spec := Spec{Algo: "hd", R: 3, DUB: 16}
	cfg := Config{Workers: 4, Seed: 7, TargetRSE: 0.10, MinPasses: 16, MaxPasses: 4000}

	baseline := goldenOf(runSession(t, autoTable(t, 3000, 20), cfg))

	// Durable run: capture every round-boundary checkpoint.
	var cps []*SessionCheckpoint
	durableCfg := cfg
	durableCfg.CheckpointEvery = 1
	durableCfg.CheckpointSink = func(cp *SessionCheckpoint) error {
		cps = append(cps, sessionThroughJSON(t, cp))
		return nil
	}
	durable := goldenOf(runSession(t, autoTable(t, 3000, 20), durableCfg))
	if durable.Passes != baseline.Passes {
		t.Fatalf("checkpointing changed the pass count: %d vs %d", durable.Passes, baseline.Passes)
	}
	for i := range baseline.MeanBits {
		if durable.MeanBits[i] != baseline.MeanBits[i] {
			t.Fatalf("checkpointing perturbed the estimate (measure %d)", i)
		}
	}
	if len(cps) < 2 {
		t.Fatalf("only %d checkpoints captured", len(cps))
	}

	// Kill at several points (first, middle, last checkpoint) and resume.
	for _, idx := range []int{0, len(cps) / 2, len(cps) - 1} {
		cp := cps[idx]
		sess, labels, err := Resume(autoTable(t, 3000, 20), spec, cp, func(*SessionCheckpoint) error { return nil })
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", idx, err)
		}
		if len(labels) != 1 || labels[0] != "COUNT" {
			t.Fatalf("labels = %v", labels)
		}
		snap, err := sess.Run(context.Background())
		if err != nil {
			t.Fatalf("resumed run from checkpoint %d: %v", idx, err)
		}
		got := goldenOf(snap)
		if got.Passes != baseline.Passes || got.Reason != baseline.Reason {
			t.Errorf("checkpoint %d: resumed passes=%d reason=%q, want passes=%d reason=%q",
				idx, got.Passes, got.Reason, baseline.Passes, baseline.Reason)
		}
		for i := range baseline.MeanBits {
			if got.MeanBits[i] != baseline.MeanBits[i] || got.StdErrBits[i] != baseline.StdErrBits[i] {
				t.Errorf("checkpoint %d: resumed estimate diverges (measure %d): mean %v vs %v",
					idx, i, math.Float64frombits(got.MeanBits[i]), math.Float64frombits(baseline.MeanBits[i]))
			}
		}
	}
}

// TestResumeBudgetNoDoubleSpend: a resumed MaxCost session counts its
// pre-kill spend — the budget is cumulative, not per-incarnation.
func TestResumeBudgetNoDoubleSpend(t *testing.T) {
	spec := Spec{Algo: "hd", R: 3, DUB: 16}
	const budget = 4000

	var cps []*SessionCheckpoint
	cfg := Config{
		Workers: 2, Seed: 3, MaxCost: budget,
		CheckpointEvery: 1,
		CheckpointSink:  func(cp *SessionCheckpoint) error { cps = append(cps, cp); return nil },
	}
	factory, _, err := spec.NewFactory(autoTable(t, 3000, 20).Schema())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := New(autoTable(t, 3000, 20), factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Pick a checkpoint with meaningful spend but budget left.
	var cp *SessionCheckpoint
	for _, c := range cps {
		if c.Cost > budget/4 && c.Cost < budget*3/4 {
			cp = c
			break
		}
	}
	if cp == nil {
		t.Skipf("no mid-budget checkpoint among %d", len(cps))
	}

	resumed, _, err := Resume(autoTable(t, 3000, 20), spec, sessionThroughJSON(t, cp), func(*SessionCheckpoint) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	snap, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reason != StopBudget {
		t.Fatalf("reason = %q, want budget", snap.Reason)
	}
	if snap.Cost < cp.Cost {
		t.Errorf("cumulative cost %d went backwards from checkpoint %d", snap.Cost, cp.Cost)
	}
	// No double-spend: fresh spend after resume stays within the remaining
	// budget plus one round of overshoot per worker pass, nowhere near a
	// full fresh budget.
	fresh := snap.Cost - cp.Cost
	if fresh >= budget {
		t.Errorf("resumed session spent %d fresh queries — the %d budget was reset, not resumed", fresh, budget)
	}
}

// TestResumeValidation covers the envelope error paths.
func TestResumeValidation(t *testing.T) {
	tbl := autoTable(t, 500, 20)
	spec := Spec{Algo: "hd", R: 3, DUB: 16}

	if _, _, err := Resume(nil, spec, &SessionCheckpoint{}, nil); err == nil {
		t.Error("nil backend accepted")
	}
	if _, _, err := Resume(tbl, spec, nil, nil); err == nil {
		t.Error("nil checkpoint accepted")
	}
	if _, _, err := Resume(tbl, spec, &SessionCheckpoint{Version: 9}, nil); err == nil {
		t.Error("future version accepted")
	}
	if _, _, err := Resume(tbl, spec, &SessionCheckpoint{Version: SessionCheckpointVersion}, nil); err == nil {
		t.Error("workerless checkpoint accepted")
	}

	// A real checkpoint resumed with CheckpointEvery but no sink must fail
	// loudly rather than silently dropping durability.
	var cps []*SessionCheckpoint
	cfg := Config{Workers: 2, Seed: 1, MaxPasses: 8, CheckpointEvery: 1,
		CheckpointSink: func(cp *SessionCheckpoint) error { cps = append(cps, cp); return nil }}
	sess, err := New(autoTable(t, 500, 20), hdFactory(t, autoTable(t, 500, 20)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints")
	}
	if _, _, err := Resume(tbl, spec, cps[0], nil); err == nil {
		t.Error("resume with checkpointing but no sink accepted")
	}
}

// TestCheckpointSinkFailureFailsSession: durability that stops persisting
// must surface, not rot silently.
func TestCheckpointSinkFailureFailsSession(t *testing.T) {
	boom := errors.New("disk full")
	cfg := Config{Workers: 2, Seed: 1, MaxPasses: 1000, CheckpointEvery: 1,
		CheckpointSink: func(*SessionCheckpoint) error { return boom }}
	tbl := autoTable(t, 3000, 20)
	sess, err := New(tbl, hdFactory(t, tbl), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the sink failure", err)
	}
	if snap := sess.Snapshot(); snap.Reason != StopError {
		t.Errorf("reason = %q, want error", snap.Reason)
	}
}

// ---------------------------------------------------------------------------
// Manager + HTTP end-to-end: kill the service mid-job, restart over the same
// file store, resume via POST /v1/jobs/{id}:resume.

func TestManagerKillRestartResumeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}

	// Incarnation 1: durable manager, aggressive checkpoint cadence.
	mgr1 := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	srv1 := httptest.NewServer(mgr1.Handler())

	const target = 0.05
	resp, created := postJSON(t, srv1.URL+"/v1/estimate",
		`{"algo":"hd","r":3,"dub":16,"workers":4,"seed":7,"target_rse":0.05,"min_passes":64,"max_passes":100000,"max_cost":2000000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/estimate: %s", resp.Status)
	}
	id := created.ID

	// Wait until at least one checkpoint landed in the store.
	deadline := time.After(10 * time.Second)
	for {
		if _, err := store.Get(id); err == nil {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no checkpoint reached the store")
		case <-time.After(2 * time.Millisecond):
		}
	}

	// "Kill" incarnation 1: cancel the in-flight job (the process dying
	// takes the session down mid-run) and drop the server.
	job1, ok := mgr1.Get(id)
	if !ok {
		t.Fatal("job vanished")
	}
	job1.Cancel()
	for {
		if state, _ := job1.State(); state != JobRunning {
			break
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Close()
	killedSnap := job1.Snapshot()
	if killedSnap.Done && killedSnap.Reason == StopTargetRSE {
		t.Skip("job converged before the kill; nothing to resume") // tiny chance with min_passes=64
	}

	// The checkpoint survived the kill.
	blob, err := store.Get(id)
	if err != nil {
		t.Fatalf("checkpoint lost: %v", err)
	}
	var env jobEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		t.Fatal(err)
	}
	if env.ID != id || env.Session == nil || env.Session.Passes == 0 {
		t.Fatalf("stored envelope %+v", env)
	}
	checkpointCost := env.Session.Cost

	// Incarnation 2: fresh manager (fresh backend build — a restarted
	// process re-opens its dataset) over the same store.
	mgr2 := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	srv2 := httptest.NewServer(mgr2.Handler())
	t.Cleanup(srv2.Close)

	// Resuming an unknown job 404s; the colon verb parses.
	if resp, _ := postJSON(t, srv2.URL+"/v1/jobs/job-999999:resume", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("resume of unknown job: %s, want 404", resp.Status)
	}

	rresp, resumed := postJSON(t, srv2.URL+"/v1/jobs/"+id+":resume", "")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %s", rresp.Status)
	}
	if resumed.ID != id {
		t.Fatalf("resumed as %q, want %q", resumed.ID, id)
	}

	// Resuming again is never a second concurrent session: while the job
	// runs it conflicts (409); if it already finished, its checkpoint is
	// gone (404, or 200 for a re-resume of a just-cancelled job). Which one
	// we see depends on how fast the resumed job converges.
	if resp, _ := postJSON(t, srv2.URL+"/v1/jobs/"+id+"/resume", ""); resp.StatusCode != http.StatusConflict &&
		resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusOK {
		t.Errorf("double resume: %s", resp.Status)
	}

	final := waitDone(t, srv2, id, JobDone)
	snap := final.Snapshot
	if snap.Reason != string(StopTargetRSE) {
		t.Fatalf("resumed job stopped with %q, want target-rse (%+v)", snap.Reason, snap)
	}
	if snap.Measures[0].RSE == nil || *snap.Measures[0].RSE > target {
		t.Errorf("resumed job did not converge to RSE <= %v: %+v", target, snap.Measures[0])
	}
	// The checkpointed budget is honored: cumulative cost continues from the
	// checkpoint instead of restarting at zero.
	if snap.Cost < checkpointCost {
		t.Errorf("final cost %d below checkpointed cost %d — the spend was reset", snap.Cost, checkpointCost)
	}
	if snap.Passes <= env.Session.Passes {
		t.Errorf("resumed job made no progress: %d passes vs %d at checkpoint", snap.Passes, env.Session.Passes)
	}

	// Completion cleans the checkpoint up: nothing left to resume.
	waitGone := time.After(5 * time.Second)
	for {
		if _, err := store.Get(id); errors.Is(err, ErrNoCheckpoint) {
			break
		}
		select {
		case <-waitGone:
			t.Fatal("finished job's checkpoint not deleted")
		case <-time.After(2 * time.Millisecond):
		}
	}

	// A fresh job on the restarted manager does not collide with the
	// resumed ID space.
	resp3, created3 := postJSON(t, srv2.URL+"/v1/estimate", `{"workers":2,"seed":1,"max_passes":4}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("POST after resume: %s", resp3.Status)
	}
	if created3.ID == id {
		t.Errorf("restarted manager reissued ID %s", id)
	}
}

// TestManagerResumeAll: the boot path — a restarted service continues every
// stored job without being asked.
func TestManagerResumeAll(t *testing.T) {
	store := NewMemStore()
	mgr1 := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))

	var ids []string
	for i := 0; i < 2; i++ {
		job, err := mgr1.Start(Spec{Algo: "hd", R: 3, DUB: 16},
			Config{Workers: 2, Seed: int64(i), TargetRSE: 1e-9, MinPasses: 8, MaxPasses: 1 << 19})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	deadline := time.After(10 * time.Second)
	for {
		stored, err := store.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(stored) == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("checkpoints stored: %d of 2", len(stored))
		case <-time.After(2 * time.Millisecond):
		}
	}
	for _, id := range ids {
		job, _ := mgr1.Get(id)
		job.Cancel()
		for {
			if state, _ := job.State(); state != JobRunning {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Cancelling stamped the envelopes "cancelled". A SIGKILLed process
	// never gets to do that — simulate the kill by restoring the running
	// mark the periodic sink had written.
	setStoredState := func(id string, state JobState) {
		t.Helper()
		blob, err := store.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		var env jobEnvelope
		if err := json.Unmarshal(blob, &env); err != nil {
			t.Fatal(err)
		}
		env.State = state
		blob, err = json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Put(id, blob); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		setStoredState(id, JobRunning)
	}

	mgr2 := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	jobs, err := mgr2.ResumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("resumed %d jobs, want 2", len(jobs))
	}
	for _, j := range jobs {
		if !j.Resumed {
			t.Errorf("job %s not marked resumed", j.ID)
		}
		if j.Snapshot().Passes == 0 {
			t.Errorf("job %s lost its checkpointed passes", j.ID)
		}
		j.Cancel()
	}
	for _, j := range jobs {
		for {
			if state, _ := j.State(); state != JobRunning {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Those deliberate cancels stamped the envelopes: a third incarnation's
	// boot resume must leave them alone, while an explicit Resume still
	// restarts one.
	mgr3 := NewManager(autoTable(t, 3000, 20), WithStore(store), WithCheckpointEvery(1))
	jobs3, err := mgr3.ResumeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs3) != 0 {
		t.Fatalf("boot resume resurrected %d deliberately cancelled job(s)", len(jobs3))
	}
	j, err := mgr3.Resume(ids[0])
	if err != nil {
		t.Fatalf("explicit resume of cancelled job: %v", err)
	}
	j.Cancel()
	// Storeless manager: ResumeAll is a no-op, Resume errors.
	plain := NewManager(autoTable(t, 100, 20))
	if jobs, err := plain.ResumeAll(); err != nil || jobs != nil {
		t.Errorf("storeless ResumeAll = %v, %v", jobs, err)
	}
	if _, err := plain.Resume("job-000001"); err == nil {
		t.Error("storeless Resume accepted")
	}
}

// TestFileStoreAtomicity exercises the rename discipline and the error
// paths shared by both stores.
func TestJobStores(t *testing.T) {
	fileStore, err := NewFileStore(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]JobStore{"mem": NewMemStore(), "file": fileStore} {
		t.Run(name, func(t *testing.T) {
			if _, err := st.Get("job-000001"); !errors.Is(err, ErrNoCheckpoint) {
				t.Errorf("Get of absent id = %v, want ErrNoCheckpoint", err)
			}
			if err := st.Put("job-000001", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			if err := st.Put("job-000001", []byte(`{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			blob, err := st.Get("job-000001")
			if err != nil || !bytes.Equal(blob, []byte(`{"v":2}`)) {
				t.Errorf("Get = %s, %v", blob, err)
			}
			if err := st.Put("job-000002", []byte(`x`)); err != nil {
				t.Fatal(err)
			}
			ids, err := st.List()
			if err != nil || len(ids) != 2 || ids[0] != "job-000001" || ids[1] != "job-000002" {
				t.Errorf("List = %v, %v", ids, err)
			}
			if err := st.Delete("job-000001"); err != nil {
				t.Fatal(err)
			}
			if err := st.Delete("job-000001"); err != nil {
				t.Errorf("double delete: %v", err)
			}
			if _, err := st.Get("job-000001"); !errors.Is(err, ErrNoCheckpoint) {
				t.Errorf("deleted id still readable")
			}
			for _, bad := range []string{"", "../evil", "a/b", `a\b`, "c:d"} {
				if err := st.Put(bad, []byte("x")); err == nil {
					t.Errorf("id %q accepted", bad)
				}
			}
		})
	}

	// File specifics: tmp leftovers are ignored and Put is visible across
	// store handles (the restart path).
	if err := os.WriteFile(filepath.Join(fileStore.Dir(), "junk.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := fileStore.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == "junk.json" || id == "junk" {
			t.Errorf("tmp leftover listed: %v", ids)
		}
	}
	reopened, err := NewFileStore(fileStore.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if blob, err := reopened.Get("job-000002"); err != nil || string(blob) != "x" {
		t.Errorf("reopened store Get = %s, %v", blob, err)
	}
}

package estsvc

import (
	"fmt"
	"math"
	"time"

	"hdunbiased/internal/core"
	"hdunbiased/internal/hdb"
	"hdunbiased/internal/stats"
)

// SessionCheckpointVersion is the session envelope format version.
const SessionCheckpointVersion = 1

// SessionCheckpoint is the serializable round-boundary state of a session:
// the stopping configuration, the merged progress accounting, and one
// estimator checkpoint plus per-measure pass moments per worker. Resume
// rebuilds a session from it that continues the original's round sequence —
// for the value-deterministic stopping rules (TargetRSE, MaxPasses) the
// resumed session's final estimates are bit-identical to the uninterrupted
// run's, because per-worker RNG substreams, weight trees and pass statistics
// all restore exactly and rule evaluation only reads those.
type SessionCheckpoint struct {
	Version int         `json:"version"`
	Config  ConfigState `json:"config"`
	Passes  int64       `json:"passes"`
	// Cost is the cumulative backend-query spend, bases of earlier resumes
	// included — the number every budget decision after resume starts from.
	Cost    int64         `json:"cost"`
	Exact   bool          `json:"exact,omitempty"`
	Workers []WorkerState `json:"workers"`
}

// ConfigState is the serializable subset of Config (sink excluded).
type ConfigState struct {
	Workers         int     `json:"workers"`
	Seed            int64   `json:"seed"`
	TargetRSE       float64 `json:"target_rse,omitempty"`
	MinPasses       int     `json:"min_passes,omitempty"`
	MaxPasses       int     `json:"max_passes,omitempty"`
	MaxCost         int64   `json:"max_cost,omitempty"`
	MaxMillis       int64   `json:"max_millis,omitempty"`
	CacheShards     int     `json:"cache_shards,omitempty"`
	CheckpointEvery int     `json:"checkpoint_every,omitempty"`
	Batch           bool    `json:"batch,omitempty"`
}

func configState(cfg Config) ConfigState {
	return ConfigState{
		Workers:         cfg.Workers,
		Seed:            cfg.Seed,
		TargetRSE:       cfg.TargetRSE,
		MinPasses:       cfg.MinPasses,
		MaxPasses:       cfg.MaxPasses,
		MaxCost:         cfg.MaxCost,
		MaxMillis:       cfg.MaxDuration.Milliseconds(),
		CacheShards:     cfg.CacheShards,
		CheckpointEvery: cfg.CheckpointEvery,
		Batch:           cfg.Batch,
	}
}

// Config rebuilds the runtime Config (sink left nil — the resuming caller
// re-arms it).
func (cs ConfigState) Config() Config {
	return Config{
		Workers:         cs.Workers,
		Seed:            cs.Seed,
		TargetRSE:       cs.TargetRSE,
		MinPasses:       cs.MinPasses,
		MaxPasses:       cs.MaxPasses,
		MaxCost:         cs.MaxCost,
		MaxDuration:     time.Duration(cs.MaxMillis) * time.Millisecond,
		CacheShards:     cs.CacheShards,
		CheckpointEvery: cs.CheckpointEvery,
		Batch:           cs.Batch,
	}
}

// WorkerState is one worker's durable state.
type WorkerState struct {
	Estimator *core.Checkpoint `json:"estimator"`
	// Runs are the per-measure pass moments, in measure order.
	Runs []RunningState `json:"runs,omitempty"`
}

// RunningState is a stats.Running as IEEE-754 bit patterns, so the JSON
// round trip is exact.
type RunningState struct {
	N        int64  `json:"n"`
	MeanBits uint64 `json:"mean_bits"`
	M2Bits   uint64 `json:"m2_bits"`
}

func runningState(r stats.Running) RunningState {
	n, mean, m2 := r.State()
	return RunningState{N: n, MeanBits: math.Float64bits(mean), M2Bits: math.Float64bits(m2)}
}

func (rs RunningState) running() stats.Running {
	return stats.FromState(rs.N, math.Float64frombits(rs.MeanBits), math.Float64frombits(rs.M2Bits))
}

// Checkpoint captures the session's durable state. It is sound only while
// every worker is idle: between rounds (where the session itself calls it
// through the sink), before Run, or after Run returns. Calling it on a
// session whose workers are mid-pass is a data race by contract.
func (s *Session) Checkpoint() (*SessionCheckpoint, error) {
	cp := &SessionCheckpoint{
		Version: SessionCheckpointVersion,
		Config:  configState(s.cfg),
		Cost:    s.costBase + s.counter.Count(),
	}
	cp.Config.Workers = len(s.workers) // after defaulting
	s.mu.Lock()
	cp.Passes = s.passes
	cp.Exact = s.exact
	runs := make([][]stats.Running, len(s.workers))
	for wi, w := range s.workers {
		runs[wi] = append([]stats.Running(nil), w.runs...)
	}
	s.mu.Unlock()
	for wi, w := range s.workers {
		ecp, err := w.est.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("estsvc: worker %d: %w", wi, err)
		}
		ws := WorkerState{Estimator: ecp}
		for _, r := range runs[wi] {
			ws.Runs = append(ws.Runs, runningState(r))
		}
		cp.Workers = append(cp.Workers, ws)
	}
	return cp, nil
}

// Resume rebuilds a session from a checkpoint over a (re-dialed or rebuilt)
// backend. spec must be the one the checkpointed session ran — internal/hdb
// cannot recover the plan from the envelope, so the job layer stores spec
// and checkpoint side by side. sink re-arms periodic checkpointing when the
// restored config asks for it (may be nil when CheckpointEvery is 0). The
// returned session is unstarted: call Run to continue the job; already-done
// stopping rules fire on the first rule check.
func Resume(backend hdb.Interface, spec Spec, cp *SessionCheckpoint, sink func(*SessionCheckpoint) error) (*Session, []string, error) {
	if backend == nil || cp == nil {
		return nil, nil, fmt.Errorf("estsvc: nil backend or checkpoint")
	}
	if cp.Version != SessionCheckpointVersion {
		return nil, nil, fmt.Errorf("estsvc: session checkpoint version %d, this build reads %d", cp.Version, SessionCheckpointVersion)
	}
	if len(cp.Workers) == 0 || cp.Config.Workers != len(cp.Workers) {
		return nil, nil, fmt.Errorf("estsvc: checkpoint has %d worker states for %d workers", len(cp.Workers), cp.Config.Workers)
	}
	compiled, err := spec.Compile(backend.Schema())
	if err != nil {
		return nil, nil, err
	}
	cfg := cp.Config.Config()
	cfg.CheckpointSink = sink
	s, err := newSession(backend, cfg, func(client hdb.Client, w int) (*core.Estimator, error) {
		return core.Restore(client, compiled.Plan, compiled.Measures, cp.Workers[w].Estimator)
	})
	if err != nil {
		return nil, nil, err
	}
	s.costBase = cp.Cost
	s.passes = cp.Passes
	s.exact = cp.Exact
	for wi, w := range s.workers {
		for _, rs := range cp.Workers[wi].Runs {
			w.runs = append(w.runs, rs.running())
		}
	}
	return s, compiled.Labels, nil
}

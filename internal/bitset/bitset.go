// Package bitset provides a dense, word-packed bitset used as the storage
// primitive for the hidden-database query evaluator. Bit i corresponds to the
// tuple at rank i in the table's ranking order, so iterating set bits in
// ascending order enumerates matching tuples in ranked (top-k) order.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is unusable; construct with
// New. Methods that combine two sets require equal capacity and panic
// otherwise, because mixing sets from different tables is always a bug.
type Set struct {
	n     int // capacity in bits
	words []uint64
}

// New returns a set with capacity for n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns a set with capacity n and all n bits set.
func NewFull(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears any bits beyond the capacity in the final word.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Capacities must match.
func (s *Set) CopyFrom(o *Set) {
	s.sameCap(o)
	copy(s.words, o.words)
}

// And intersects s with o in place. Capacities must match.
func (s *Set) And(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndCount returns |s ∩ o| without allocating. Capacities must match.
func (s *Set) AndCount(o *Set) int {
	s.sameCap(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// AndCountUpTo returns min(|s ∩ o|, limit+1): it counts intersection bits but
// stops as soon as the count exceeds limit. This is the top-k fast path — the
// evaluator only needs to know whether a query overflows, i.e. whether the
// intersection has more than k members.
func (s *Set) AndCountUpTo(o *Set, limit int) int {
	s.sameCap(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
		if c > limit {
			return limit + 1
		}
	}
	return c
}

// CountUpTo returns min(count, limit+1): it counts set bits but stops as
// soon as the count exceeds limit — the single-set counterpart of
// AndCountUpTo, used by prefix cursors probing below an unconstrained
// (universe) prefix. The result is exact when it is <= limit; limit+1 means
// "more than limit". The word-granular early exit clamps its overshoot so
// the value matches the hybrid and paged containers' clamped counts exactly.
func (s *Set) CountUpTo(limit int) int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
		if c > limit {
			return limit + 1
		}
	}
	return c
}

// AndInto overwrites dst with a ∩ b. All three sets must share one capacity;
// dst may alias a or b. This is the prefix-cursor materialisation primitive:
// extending a drill-down prefix by one predicate is a single AndInto of the
// predicate's posting bitmap against the parent prefix, into a caller-owned
// (reused) set — no clone, no allocation.
func AndInto(dst, a, b *Set) {
	dst.sameCap(a)
	dst.sameCap(b)
	for i, w := range a.words {
		dst.words[i] = w & b.words[i]
	}
}

// AndFirstN appends to dst the indices of the first n set bits of a ∩ b,
// without materialising the intersection: the two-set fast path of
// IntersectFirstN, streaming word by word and returning as soon as n bits
// have been collected. A top-k evaluator asking for k+1 bits therefore pays
// O(answer prefix) on overflowing intersections instead of O(capacity).
// Fewer than n indices are appended when the intersection is smaller. The
// two sets must share one capacity.
func AndFirstN(dst []int, n int, a, b *Set) []int {
	a.sameCap(b)
	if n <= 0 {
		return dst
	}
	for wi, w := range a.words {
		w &= b.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+bit)
			if n--; n == 0 {
				return dst
			}
			w &= w - 1
		}
	}
	return dst
}

// Or unions s with o in place. Capacities must match.
func (s *Set) Or(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndNot removes o's bits from s in place. Capacities must match.
func (s *Set) AndNot(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Clear clears all bits, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyAnd reports whether s ∩ o is non-empty without materialising it.
func (s *Set) AnyAnd(o *Set) bool {
	s.sameCap(o)
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o have identical capacity and contents.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order until fn returns
// false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// FirstN appends the indices of the first n set bits (in ascending order) to
// dst and returns it. Fewer than n are appended if the set has fewer bits.
func (s *Set) FirstN(dst []int, n int) []int {
	if n <= 0 {
		return dst
	}
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		n--
		return n > 0
	})
	return dst
}

// IntersectFirstN appends to dst the indices of the first n set bits of the
// intersection of all given sets, without materialising the intersection: it
// streams word-blocked (AND one 64-bit word across every set, emit its bits,
// move on) and returns as soon as n bits have been collected. A top-k
// evaluator asking for k+1 bits therefore pays O(answer prefix) on
// overflowing queries instead of O(capacity). Fewer than n indices are
// appended when the intersection is smaller. All sets must share one
// capacity.
//
// The empty family is defined, not a panic: the intersection of zero sets is
// mathematically the universe, but with no operand there is no capacity to
// enumerate one, so IntersectFirstN returns dst unchanged. Callers that mean
// "first n of the whole table" must pass a full set (NewFull) explicitly —
// the hdb engine never hits this case because it special-cases the empty
// query before reaching the intersection.
func IntersectFirstN(dst []int, n int, sets ...*Set) []int {
	if len(sets) == 0 {
		return dst
	}
	first := sets[0]
	for _, s := range sets[1:] {
		first.sameCap(s)
	}
	if n <= 0 {
		return dst
	}
	for wi, w := range first.words {
		for _, s := range sets[1:] {
			w &= s.words[wi]
			if w == 0 {
				break
			}
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			if n--; n == 0 {
				return dst
			}
			w &= w - 1
		}
	}
	return dst
}

// Words returns the backing word slice (bit i lives at word i/64, bit
// i%64). It exists for the internal/posting container layer, whose hybrid
// kernels need word-granular masked access; everyone else should treat the
// returned slice as read-only — writes bypass the capacity invariant unless
// the caller owns the set and respects trim.
func (s *Set) Words() []uint64 { return s.words }

// Indices returns all set bit indices in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// String renders the set as a brace-delimited index list, for tests and
// debugging.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if s.Count() != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, s.Count())
		}
		if s.Any() {
			t.Errorf("New(%d).Any() = true", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		s := NewFull(n)
		if got := s.Count(); got != n {
			t.Errorf("NewFull(%d).Count() = %d", n, got)
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i) {
				t.Errorf("NewFull(%d) missing bit %d", n, i)
			}
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		s.Add(i)
	}
	if got := s.Count(); got != len(idx) {
		t.Fatalf("Count = %d, want %d", got, len(idx))
	}
	for _, i := range idx {
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if s.Contains(2) || s.Contains(62) || s.Contains(66) {
		t.Error("Contains reports unset bits as set")
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != len(idx)-1 {
		t.Errorf("Count after Remove = %d", got)
	}
	// Add is idempotent.
	s.Add(0)
	s.Add(0)
	if got := s.Count(); got != len(idx)-1 {
		t.Errorf("Count after double Add = %d", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Add(10)":       func() { s.Add(10) },
		"Add(-1)":       func() { s.Add(-1) },
		"Contains(10)":  func() { s.Contains(10) },
		"Remove(10)":    func() { s.Remove(10) },
		"And mismatch":  func() { s.And(New(11)) },
		"Or mismatch":   func() { s.Or(New(9)) },
		"AndCount miss": func() { s.AndCount(New(11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAndOrAndNot(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i) // multiples of 3
	}
	inter := a.Clone()
	inter.And(b)
	for i := 0; i < 100; i++ {
		want := i%6 == 0
		if inter.Contains(i) != want {
			t.Errorf("And: bit %d = %v, want %v", i, inter.Contains(i), want)
		}
	}
	if inter.Count() != a.AndCount(b) {
		t.Errorf("AndCount = %d, materialised = %d", a.AndCount(b), inter.Count())
	}

	union := a.Clone()
	union.Or(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 || i%3 == 0
		if union.Contains(i) != want {
			t.Errorf("Or: bit %d = %v, want %v", i, union.Contains(i), want)
		}
	}

	diff := a.Clone()
	diff.AndNot(b)
	for i := 0; i < 100; i++ {
		want := i%2 == 0 && i%3 != 0
		if diff.Contains(i) != want {
			t.Errorf("AndNot: bit %d = %v, want %v", i, diff.Contains(i), want)
		}
	}
}

func TestAndCountUpTo(t *testing.T) {
	a := NewFull(1000)
	b := NewFull(1000)
	if got := a.AndCountUpTo(b, 10); got <= 10 {
		t.Errorf("AndCountUpTo(10) = %d, want > 10", got)
	}
	if got := a.AndCountUpTo(b, 2000); got != 1000 {
		t.Errorf("AndCountUpTo(2000) = %d, want exact 1000", got)
	}
	empty := New(1000)
	if got := a.AndCountUpTo(empty, 0); got != 0 {
		t.Errorf("AndCountUpTo with empty = %d", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	for _, i := range []int{5, 64, 130, 199} {
		s.Add(i)
	}
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130}, {131, 199}, {199, 199},
		{-5, 5}, {200, -1}, {1000, -1},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := New(64).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 128, 255, 299}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Errorf("Indices = %v, want %v", got, want)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return len(got) < 3
	})
	if !reflect.DeepEqual(got, want[:3]) {
		t.Errorf("early-stop ForEach = %v, want %v", got, want[:3])
	}
}

func TestFirstN(t *testing.T) {
	s := New(100)
	for i := 10; i < 20; i++ {
		s.Add(i)
	}
	if got := s.FirstN(nil, 3); !reflect.DeepEqual(got, []int{10, 11, 12}) {
		t.Errorf("FirstN(3) = %v", got)
	}
	if got := s.FirstN(nil, 100); len(got) != 10 {
		t.Errorf("FirstN(100) returned %d indices, want 10", len(got))
	}
	if got := s.FirstN(nil, 0); len(got) != 0 {
		t.Errorf("FirstN(0) = %v", got)
	}
	// Appends to dst.
	dst := []int{-1}
	if got := s.FirstN(dst, 1); !reflect.DeepEqual(got, []int{-1, 10}) {
		t.Errorf("FirstN append = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(70)
	a.Add(1)
	c := a.Clone()
	c.Add(2)
	if a.Contains(2) {
		t.Error("mutating clone affected original")
	}
	a.Add(3)
	if c.Contains(3) {
		t.Error("mutating original affected clone")
	}
}

func TestCopyFromEqualClear(t *testing.T) {
	a := New(129)
	for i := 0; i < 129; i += 7 {
		a.Add(i)
	}
	b := New(129)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Error("CopyFrom: not Equal")
	}
	b.Clear()
	if b.Any() || b.Count() != 0 {
		t.Error("Clear left bits set")
	}
	if a.Equal(New(128)) {
		t.Error("Equal across capacities should be false")
	}
}

func TestAnyAnd(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Add(50)
	b.Add(51)
	if a.AnyAnd(b) {
		t.Error("AnyAnd true for disjoint sets")
	}
	b.Add(50)
	if !a.AnyAnd(b) {
		t.Error("AnyAnd false for overlapping sets")
	}
}

// randomSet builds a set plus a reference bool-slice model from rnd.
func randomSet(n int, rnd *rand.Rand) (*Set, []bool) {
	s := New(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rnd.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

// TestQuickAgainstModel cross-checks the bitset against a []bool reference
// model under random And/Or/AndNot compositions.
func TestQuickAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(300)
		a, ra := randomSet(n, rnd)
		b, rb := randomSet(n, rnd)
		switch rnd.Intn(3) {
		case 0:
			a.And(b)
			for i := range ra {
				ra[i] = ra[i] && rb[i]
			}
		case 1:
			a.Or(b)
			for i := range ra {
				ra[i] = ra[i] || rb[i]
			}
		case 2:
			a.AndNot(b)
			for i := range ra {
				ra[i] = ra[i] && !rb[i]
			}
		}
		count := 0
		for i, v := range ra {
			if v != a.Contains(i) {
				return false
			}
			if v {
				count++
			}
		}
		return count == a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeMorgan checks |a∩b| + |a∖b| == |a| and commutativity of AndCount.
func TestQuickDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(500)
		a, _ := randomSet(n, rnd)
		b, _ := randomSet(n, rnd)
		diff := a.Clone()
		diff.AndNot(b)
		if a.AndCount(b)+diff.Count() != a.Count() {
			return false
		}
		return a.AndCount(b) == b.AndCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickNextSetMatchesForEach verifies the two iteration primitives agree.
func TestQuickNextSetMatchesForEach(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 1 + rnd.Intn(400)
		s, _ := randomSet(n, rnd)
		var viaNext []int
		for i := s.NextSet(0); i != -1; i = s.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		return reflect.DeepEqual(viaNext, s.Indices()) ||
			(len(viaNext) == 0 && len(s.Indices()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	s.Add(1)
	s.Add(9)
	if got := s.String(); got != "{1 9}" {
		t.Errorf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

func BenchmarkAndCount(b *testing.B) {
	x := NewFull(200000)
	y := NewFull(200000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}

func BenchmarkAndCountUpToOverflow(b *testing.B) {
	x := NewFull(200000)
	y := NewFull(200000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.AndCountUpTo(y, 100)
	}
}

package bitset

import (
	"math/rand"
	"testing"
)

// naiveIntersectFirstN is the reference: materialise the intersection with
// Clone+And, then take FirstN. IntersectFirstN must agree with it bit for
// bit on every input.
func naiveIntersectFirstN(n int, sets ...*Set) []int {
	acc := sets[0].Clone()
	for _, s := range sets[1:] {
		acc.And(s)
	}
	return acc.FirstN(nil, n)
}

func setOf(cap int, idx ...int) *Set {
	s := New(cap)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectFirstNBasic(t *testing.T) {
	a := setOf(200, 1, 63, 64, 65, 128, 199)
	b := setOf(200, 0, 63, 65, 127, 128, 199)
	cases := []struct {
		n    int
		want []int
	}{
		{0, nil},
		{-3, nil},
		{1, []int{63}},
		{2, []int{63, 65}},
		{3, []int{63, 65, 128}},
		{4, []int{63, 65, 128, 199}},
		{100, []int{63, 65, 128, 199}}, // n larger than population
	}
	for _, c := range cases {
		got := IntersectFirstN(nil, c.n, a, b)
		if !eqInts(got, c.want) {
			t.Errorf("n=%d: got %v, want %v", c.n, got, c.want)
		}
	}
}

func TestIntersectFirstNSingleSet(t *testing.T) {
	a := setOf(130, 0, 64, 129)
	if got := IntersectFirstN(nil, 2, a); !eqInts(got, []int{0, 64}) {
		t.Errorf("single set: %v", got)
	}
	if got := IntersectFirstN(nil, 10, a); !eqInts(got, []int{0, 64, 129}) {
		t.Errorf("single set exhaustive: %v", got)
	}
}

func TestIntersectFirstNWordBoundaries(t *testing.T) {
	// Bits straddling every word boundary of a 3-word set.
	a := setOf(192, 63, 64, 127, 128, 191)
	b := NewFull(192)
	got := IntersectFirstN(nil, 5, a, b)
	if !eqInts(got, []int{63, 64, 127, 128, 191}) {
		t.Errorf("boundary bits: %v", got)
	}
	// Early exit exactly at a boundary bit.
	if got := IntersectFirstN(nil, 3, a, b); !eqInts(got, []int{63, 64, 127}) {
		t.Errorf("boundary early exit: %v", got)
	}
}

func TestIntersectFirstNEmpty(t *testing.T) {
	a := setOf(100, 1, 2, 3)
	empty := New(100)
	if got := IntersectFirstN(nil, 5, a, empty); len(got) != 0 {
		t.Errorf("intersection with empty set: %v", got)
	}
	if got := IntersectFirstN(nil, 5, New(0)); len(got) != 0 {
		t.Errorf("zero-capacity set: %v", got)
	}
}

func TestIntersectFirstNAppends(t *testing.T) {
	a := setOf(64, 5, 7)
	dst := []int{99}
	got := IntersectFirstN(dst, 10, a, a)
	if !eqInts(got, []int{99, 5, 7}) {
		t.Errorf("append semantics: %v", got)
	}
}

// TestIntersectFirstNZeroSets pins the defined empty-family behaviour: zero
// sets carry no capacity to enumerate a universe from, so the call is a
// documented no-op rather than the panic it used to be.
func TestIntersectFirstNZeroSets(t *testing.T) {
	if got := IntersectFirstN(nil, 5); got != nil {
		t.Errorf("zero sets: got %v, want nil", got)
	}
	dst := []int{42}
	if got := IntersectFirstN(dst, 5); !eqInts(got, []int{42}) {
		t.Errorf("zero sets must leave dst unchanged: got %v", got)
	}
	if got := IntersectFirstN(dst, 0); !eqInts(got, []int{42}) {
		t.Errorf("zero sets with n=0: got %v", got)
	}
}

func TestIntersectFirstNCapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity mismatch")
		}
	}()
	IntersectFirstN(nil, 1, New(64), New(65))
}

func TestAndFirstNBasic(t *testing.T) {
	a := setOf(200, 1, 63, 64, 65, 128, 199)
	b := setOf(200, 0, 63, 65, 127, 128, 199)
	cases := []struct {
		n    int
		want []int
	}{
		{0, nil},
		{-1, nil},
		{1, []int{63}},
		{3, []int{63, 65, 128}},
		{100, []int{63, 65, 128, 199}},
	}
	for _, c := range cases {
		if got := AndFirstN(nil, c.n, a, b); !eqInts(got, c.want) {
			t.Errorf("n=%d: got %v, want %v", c.n, got, c.want)
		}
	}
	dst := []int{7}
	if got := AndFirstN(dst, 2, a, b); !eqInts(got, []int{7, 63, 65}) {
		t.Errorf("append semantics: %v", got)
	}
}

func TestAndFirstNCapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity mismatch")
		}
	}()
	AndFirstN(nil, 1, New(64), New(65))
}

func TestAndInto(t *testing.T) {
	a := setOf(130, 0, 5, 64, 100, 129)
	b := setOf(130, 5, 64, 99, 129)
	dst := NewFull(130)
	AndInto(dst, a, b)
	want := setOf(130, 5, 64, 129)
	if !dst.Equal(want) {
		t.Errorf("AndInto: got %v, want %v", dst, want)
	}
	// Aliasing: dst == a.
	AndInto(a, a, b)
	if !a.Equal(want) {
		t.Errorf("aliased AndInto: got %v, want %v", a, want)
	}
}

func TestCountUpTo(t *testing.T) {
	s := setOf(300, 1, 64, 65, 128, 299)
	// Exact when the population fits the limit; ">limit" (word-granular, may
	// overshoot within a word) otherwise — the classification contract.
	for _, c := range []struct{ limit int }{{0}, {1}, {2}, {4}, {5}, {100}} {
		got := s.CountUpTo(c.limit)
		if 5 <= c.limit {
			if got != 5 {
				t.Errorf("CountUpTo(%d) = %d, want exact 5", c.limit, got)
			}
		} else if got <= c.limit {
			t.Errorf("CountUpTo(%d) = %d, want >limit", c.limit, got)
		}
	}
	if got := New(100).CountUpTo(3); got != 0 {
		t.Errorf("empty CountUpTo = %d", got)
	}
}

// TestAndFirstNFuzz cross-checks the two-set fast path against the variadic
// streamer (itself pinned against the naive reference below).
func TestAndFirstNFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		capacity := 1 + rnd.Intn(500)
		mk := func() *Set {
			s := New(capacity)
			density := rnd.Float64()
			for i := 0; i < capacity; i++ {
				if rnd.Float64() < density {
					s.Add(i)
				}
			}
			return s
		}
		a, b := mk(), mk()
		n := rnd.Intn(capacity + 2)
		got := AndFirstN(nil, n, a, b)
		want := IntersectFirstN(nil, n, a, b)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (cap=%d n=%d): got %v, want %v", trial, capacity, n, got, want)
		}
	}
}

// TestIntersectFirstNFuzz cross-checks the streamed early-exit path against
// the naive Clone+And+FirstN reference over random set families, densities,
// capacities (including non-word-multiples) and cut-offs.
func TestIntersectFirstNFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		capacity := 1 + rnd.Intn(700)
		nSets := 1 + rnd.Intn(4)
		sets := make([]*Set, nSets)
		for si := range sets {
			s := New(capacity)
			density := rnd.Float64()
			for i := 0; i < capacity; i++ {
				if rnd.Float64() < density {
					s.Add(i)
				}
			}
			sets[si] = s
		}
		n := rnd.Intn(capacity + 2)
		got := IntersectFirstN(nil, n, sets...)
		want := naiveIntersectFirstN(n, sets...)
		if !eqInts(got, want) {
			t.Fatalf("trial %d (cap=%d sets=%d n=%d): got %v, want %v",
				trial, capacity, nSets, n, got, want)
		}
	}
}

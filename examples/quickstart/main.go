// Quickstart: estimate the size of a hidden database you can only reach
// through a top-k search form.
//
// The example builds a synthetic 50,000-tuple Boolean hidden database,
// pretends we can only query it through its restrictive interface, and runs
// HD-UNBIASED-SIZE (random drill-down with backtracking + weight adjustment
// + divide-&-conquer) until a 500-query budget is spent.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hdunbiased/internal/core"
	"hdunbiased/internal/datagen"
	"hdunbiased/internal/stats"
)

func main() {
	// A hidden database: 50k tuples, 30 Boolean attributes, top-100
	// interface. In real use this would be a webform.Client instead.
	data, err := datagen.BoolIID(50000, 30, 0.5, 1)
	if err != nil {
		log.Fatal(err)
	}
	db, err := data.Table(100)
	if err != nil {
		log.Fatal(err)
	}

	// HD-UNBIASED-SIZE with the paper's default knobs: r drill-downs per
	// subtree and subdomain bound D_UB.
	est, err := core.NewHDUnbiasedSize(db, 4, 32, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Spend up to 500 interface queries; each Estimate pass is an unbiased
	// size estimate and RunBudget averages them.
	res, err := core.RunBudget(est, 500, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("queries spent:   %d\n", res.Cost)
	fmt.Printf("passes:          %d\n", res.Passes)
	fmt.Printf("estimated size:  %.0f  (± %.0f stderr)\n", res.Means[0], res.StdErrs[0])
	fmt.Printf("true size:       %d  (the estimator never saw this)\n", db.Size())
	fmt.Printf("relative error:  %.2f%%\n",
		100*stats.RelativeError(float64(db.Size()), res.Means[0]))
}

// Service walkthrough: the full estimation-as-a-service stack in one
// process.
//
// Three pieces are wired together, talking only HTTP where it matters:
//
//  1. a hidden database served behind the paper's top-k webform interface
//     (what cmd/hdserver runs),
//  2. an estimation job service over that webform (what cmd/hdservice
//     runs): POST a question, poll the job, watch the relative standard
//     error shrink as parallel drill-down workers share one cache,
//  3. a plain HTTP client playing the user.
//
// The equivalent by hand:
//
//	hdserver  -dataset auto -m 60000 -addr 127.0.0.1:8080 &
//	hdservice -url http://127.0.0.1:8080 -addr 127.0.0.1:8090 &
//	curl -s -X POST localhost:8090/v1/estimate -d '{"workers":8,"target_rse":0.05,"max_cost":20000,"sum":["price"]}'
//	curl -s localhost:8090/v1/jobs/job-000001
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"hdunbiased/internal/datagen"
	"hdunbiased/internal/estsvc"
	"hdunbiased/internal/webform"
)

func main() {
	// 1. The hidden database: a Yahoo!-Auto-like dataset behind a top-k
	// webform. The estimation side will only ever see /schema and /search.
	data, err := datagen.Auto(60000, 1)
	if err != nil {
		log.Fatal(err)
	}
	tbl, err := data.Table(100)
	if err != nil {
		log.Fatal(err)
	}
	form, err := webform.NewServer(tbl, webform.ServerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	formAddr := serve(form)
	fmt.Printf("hidden database:    http://%s (%d tuples behind a top-%d form)\n", formAddr, tbl.Size(), tbl.K())

	// 2. The estimation service, dialing the webform like any other client.
	client, err := webform.Dial("http://" + formAddr)
	if err != nil {
		log.Fatal(err)
	}
	svcAddr := serve(estsvc.NewManager(client).Handler())
	fmt.Printf("estimation service: http://%s\n\n", svcAddr)

	// 3. The user: submit a job — COUNT and SUM(price), 8 workers, stop at
	// 5% relative standard error or 20k interface queries.
	req := estsvc.EstimateRequest{
		Spec:      estsvc.Spec{Algo: "hd", R: 5, DUB: 16, Sum: []string{datagen.AutoPriceMeasure}},
		Workers:   8,
		Seed:      42,
		TargetRSE: 0.05,
		MaxCost:   20000,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+svcAddr+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var job estsvc.JobPayload
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("submitted %s: hd r=5 dub=16, 8 workers, target RSE 5%%\n", job.ID)

	// Poll the job and stream its convergence.
	for job.State == string(estsvc.JobRunning) {
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get("http://" + svcAddr + "/v1/jobs/" + job.ID)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		s := job.Snapshot
		if len(s.Measures) > 0 && s.Measures[0].RSE != nil {
			fmt.Printf("  passes=%-5d cost=%-6d cache_hits=%-7d COUNT≈%-9.0f rse=%.3f\n",
				s.Passes, s.Cost, s.CacheHits, s.Measures[0].Mean, *s.Measures[0].RSE)
		}
	}

	fmt.Printf("\njob %s: stop=%s after %s\n", job.State, job.Snapshot.Reason,
		(time.Duration(job.Snapshot.ElapsedMillis) * time.Millisecond).Round(time.Millisecond))
	for _, ms := range job.Snapshot.Measures {
		fmt.Printf("  %-12s estimate=%.4g (± %.3g stderr)\n", ms.Label, ms.Mean, ms.StdErr)
	}
	fmt.Printf("\nground truth (never disclosed by the interface): COUNT=%d\n", tbl.Size())
}

// serve mounts h on a loopback listener and returns its address.
func serve(h http.Handler) string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, h); err != nil {
			log.Print(err)
		}
	}()
	return ln.Addr().String()
}

// Yahoo!-Auto-style end-to-end run: the Figure 18 scenario over HTTP.
//
// The example starts a hidden-database website (a webform server over the
// synthetic Auto inventory) with the same interface restrictions the paper
// faced on autos.yahoo.com — top-k results, MAKE/MODEL required in every
// query — then estimates the number of Toyota Corollas purely through the
// web interface, reporting the running mean after each of 10 executions.
//
//	go run ./examples/yahooauto
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"hdunbiased/internal/core"
	"hdunbiased/internal/datagen"
	"hdunbiased/internal/hdb"
	"hdunbiased/internal/stats"
	"hdunbiased/internal/webform"
)

func main() {
	// The "website": 40k used cars behind a top-100 advanced-search form
	// that insists on MAKE or MODEL being specified.
	inventory, err := datagen.Auto(40000, 7)
	if err != nil {
		log.Fatal(err)
	}
	db, err := inventory.Table(100)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := webform.NewServer(db, webform.ServerOptions{
		RequireOneOf: []string{"make", "model"},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint:errcheck
	fmt.Printf("hidden database serving on http://%s\n\n", ln.Addr())

	// The client side knows only the URL.
	client, err := webform.Dial("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}

	// COUNT of Toyota Corollas: condition on make & model, drill the rest.
	makeCode := datagen.AutoMakeCode("toyota")
	modelCode := datagen.AutoModelCode(makeCode, "corolla")
	cond := hdb.Query{}.
		And(datagen.AutoMake, uint16(makeCode)).
		And(datagen.AutoModel, uint16(modelCode))

	est, err := core.NewHDUnbiasedAgg(client, cond,
		[]core.Measure{core.CountMeasure()}, 30, 126, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("run  estimate  running-mean  queries-so-far")
	var running stats.Running
	for run := 1; run <= 10; run++ {
		res, err := est.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		running.Add(res.Values[0])
		fmt.Printf("%3d  %8.0f  %12.0f  %14d\n", run, res.Values[0], running.Mean(), est.Cost())
	}

	truth, err := db.SelCount(cond)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue Corolla count: %d (relative error of final mean: %.2f%%)\n",
		truth, 100*stats.RelativeError(float64(truth), running.Mean()))
}

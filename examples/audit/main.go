// Size-claim audit: the paper's opening motivation. A hidden-database
// operator advertises its (large) size to attract customers, but the claim
// is not verifiable through the search form — unless you estimate the size
// yourself without bias.
//
// The example serves a database whose operator claims 2x its true size,
// audits the claim through the restrictive interface alone, and reports a
// verdict with an uncertainty interval.
//
//	go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"math"
	"net"
	"net/http"

	"hdunbiased/internal/core"
	"hdunbiased/internal/datagen"
	"hdunbiased/internal/webform"
)

func main() {
	// The operator's side: a 30,000-row database... advertised as 60,000.
	const trueSize = 30000
	const claimed = 60000
	data, err := datagen.Auto(trueSize, 11)
	if err != nil {
		log.Fatal(err)
	}
	db, err := data.Table(100)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := webform.NewServer(db, webform.ServerOptions{
		LimitPerClient: 2000, // the per-IP daily limit auditors must live with
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv) //nolint:errcheck

	fmt.Printf("operator claims:   %d rows\n", claimed)
	fmt.Printf("per-IP limit:      2000 queries/day\n\n")

	// The auditor's side: only the URL and the form.
	client, err := webform.Dial("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	est, err := core.NewHDUnbiasedSize(client, 4, 32, 99)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.RunBudget(est, 1500, 200)
	if err != nil {
		log.Fatal(err)
	}
	mean := res.Means[0]
	// ±2 standard errors ≈ 95% interval around the unbiased estimate.
	lo, hi := mean-2*res.StdErrs[0], mean+2*res.StdErrs[0]
	fmt.Printf("audit estimate:    %.0f rows  (95%% interval %.0f .. %.0f)\n", mean, lo, hi)
	fmt.Printf("queries spent:     %d of 2000\n\n", res.Cost)

	switch {
	case float64(claimed) < lo || float64(claimed) > hi:
		ratio := float64(claimed) / mean
		fmt.Printf("VERDICT: claim not supported — advertised size is %.1fx the estimate,\n", ratio)
		fmt.Printf("and %d lies outside the estimate's 95%% interval.\n", claimed)
	default:
		fmt.Println("VERDICT: claim consistent with the unbiased estimate.")
	}
	fmt.Printf("(true size, known only to the operator: %d)\n", db.Size())
	if math.Abs(mean-trueSize)/trueSize > 0.2 {
		fmt.Println("warning: estimate drifted >20% from truth; increase the budget")
	}
}

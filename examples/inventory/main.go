// Inventory balance: the Figure 19 scenario — HD-UNBIASED-AGG estimating
// SUM(Price), the total inventory value, for five popular models of a
// hidden car database, spending at most 1,000 queries per model.
//
// SUM and COUNT are estimated simultaneously from the same drill-downs, and
// the (biased, as the paper proves) ratio AVG = SUM/COUNT is shown too.
//
//	go run ./examples/inventory
package main

import (
	"fmt"
	"log"

	"hdunbiased/internal/core"
	"hdunbiased/internal/datagen"
	"hdunbiased/internal/hdb"
	"hdunbiased/internal/stats"
)

func main() {
	inventory, err := datagen.Auto(40000, 3)
	if err != nil {
		log.Fatal(err)
	}
	db, err := inventory.Table(100)
	if err != nil {
		log.Fatal(err)
	}
	priceIdx := db.Schema().MeasureIndex(datagen.AutoPriceMeasure)

	models := []struct{ mk, model string }{
		{"ford", "escape"},
		{"chevrolet", "cobalt"},
		{"pontiac", "g6"},
		{"ford", "f-150"},
		{"toyota", "corolla"},
	}

	fmt.Println("model              est SUM($)      true SUM($)   relerr   est AVG($)  queries")
	for i, mm := range models {
		mc := datagen.AutoMakeCode(mm.mk)
		cond := hdb.Query{}.
			And(datagen.AutoMake, uint16(mc)).
			And(datagen.AutoModel, uint16(datagen.AutoModelCode(mc, mm.model)))

		est, err := core.NewHDUnbiasedAgg(db, cond,
			[]core.Measure{core.CountMeasure(), core.NumMeasure(priceIdx)},
			5, 16, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}

		res, err := core.RunBudget(est, 1000, 150)
		if err != nil {
			log.Fatal(err)
		}

		truth, err := db.SumMeasure(datagen.AutoPriceMeasure, cond)
		if err != nil {
			log.Fatal(err)
		}
		count, sum := res.Means[0], res.Means[1]
		avg := core.AvgEstimate(sum, count)
		fmt.Printf("%-10s %-7s %12.0f  %14.0f  %6.2f%%  %10.0f  %7d\n",
			mm.mk, mm.model, sum, truth,
			100*stats.RelativeError(truth, sum), avg, res.Cost)
	}
	fmt.Println("\n(AVG = SUM/COUNT ratio estimate; unbiased AVG is impossible without")
	fmt.Println(" brute-force sampling — Section 5.2 of the paper.)")
}

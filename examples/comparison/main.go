// Estimator shoot-out: every size estimator in the repository against the
// same skewed hidden database with the same query budget — the paper's
// Figure 6 story in miniature.
//
//	go run ./examples/comparison
package main

import (
	"errors"
	"fmt"
	"log"
	"math"

	"hdunbiased/internal/baseline"
	"hdunbiased/internal/core"
	"hdunbiased/internal/datagen"
	"hdunbiased/internal/hdb"
	"hdunbiased/internal/stats"
)

const (
	budget = 500 // queries per estimator per trial
	trials = 15  // independent trials for the error statistics
)

func main() {
	data, err := datagen.BoolMixed(50000, 30, 2)
	if err != nil {
		log.Fatal(err)
	}
	db, err := data.Table(100)
	if err != nil {
		log.Fatal(err)
	}
	truth := float64(db.Size())
	fmt.Printf("hidden database: %s, true size %d (skewed Boolean)\n", data.Name, db.Size())
	fmt.Printf("budget: %d queries x %d trials per estimator\n\n", budget, trials)

	type contender struct {
		name string
		run  func(seed int64) (float64, error)
	}
	contenders := []contender{
		{"BRUTE-FORCE-SAMPLER", func(seed int64) (float64, error) {
			bf := baseline.NewBruteForce(db, seed)
			for i := 0; i < budget; i++ {
				if err := bf.Step(); err != nil {
					return 0, err
				}
			}
			return bf.Estimate(), nil
		}},
		{"CAPTURE-&-RECAPTURE", func(seed int64) (float64, error) {
			lim := hdb.NewLimiter(db, budget)
			cr := baseline.NewCaptureRecapture(
				baseline.NewHiddenDBSampler(lim, math.MaxFloat64, seed))
			for {
				if err := cr.Grow(); err != nil {
					if errors.Is(err, hdb.ErrQueryLimit) {
						return cr.Estimate(), nil
					}
					return 0, err
				}
			}
		}},
		{"BOOL-UNBIASED-SIZE", func(seed int64) (float64, error) {
			return budgeted(func() (*core.Estimator, error) {
				return core.NewBoolUnbiasedSize(db, seed)
			})
		}},
		{"HD-UNBIASED-SIZE", func(seed int64) (float64, error) {
			return budgeted(func() (*core.Estimator, error) {
				return core.NewHDUnbiasedSize(db, 4, 32, seed)
			})
		}},
	}

	fmt.Println("estimator             mean-estimate   rel-error      MSE")
	for _, c := range contenders {
		ests := make([]float64, 0, trials)
		for tr := 0; tr < trials; tr++ {
			v, err := c.run(int64(tr + 1))
			if err != nil {
				log.Fatalf("%s: %v", c.name, err)
			}
			ests = append(ests, v)
		}
		s := stats.Summarize(truth, ests)
		fmt.Printf("%-22s %12.0f  %9.2f%%  %.3e\n", c.name, s.Mean, s.RelErr*100, s.MSE)
	}
	fmt.Println("\nBRUTE-FORCE finds nothing at this budget (success rate m/|Dom| ~ 5e-5),")
	fmt.Println("C&R is biased by its sampler, BOOL/HD are unbiased — HD with the")
	fmt.Println("smallest variance thanks to weight adjustment and divide-&-conquer.")
}

// budgeted repeats Estimate passes until the budget is spent and returns the
// mean estimate.
func budgeted(mk func() (*core.Estimator, error)) (float64, error) {
	e, err := mk()
	if err != nil {
		return 0, err
	}
	res, err := core.RunBudget(e, budget, 200)
	if err != nil {
		return 0, err
	}
	return res.Means[0], nil
}
